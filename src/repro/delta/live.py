"""The live world: incremental recomputation under an event stream.

:class:`LiveWorld` wraps a built :class:`~repro.scenario.world.World`
and applies :mod:`repro.delta.events` one at a time, re-deriving only
what each event can affect:

* **RPKI events** re-run the (plan-cached) relying party, diff the VRP
  multiset, and re-validate only the routes the changed prefixes cover
  (:class:`~repro.delta.cover.RouteCoverIndex`); verdict memos for
  everything outside the cover set carry over via ``seed_from``.
* **IRR events** re-validate the cover set of the edited object's
  prefix, seeding the registry memo with the carried verdicts first.
* **Membership events** touch nothing derived (the participants dataset
  serialises straight from the registry).
* **Topology events** rebuild the propagation engine (structure
  changed; no cached path is sound) and mark size classes stale.
* **Policy flips** rebuild the engine against the new policy table but
  adopt every cached path whose effective-filter signature is unchanged
  (:meth:`~repro.bgp.propagation.PropagationEngine.adopt_cache`).

Verdict changes *regroup* routes among (origin, route class) buckets;
:meth:`LiveWorld.world` then materialises a full ``World`` by replaying
exactly the builder's collection and IHR derivation over the current
buckets — propagation comes from the (mostly warm) engine memo and
transit scoring from a per-group cache keyed on everything a group's
hegemony depends on.  The result must digest-equal
:func:`~repro.delta.rebuild.cold_rebuild` of the same events — the
replay==rebuild invariant pinned by ``tests/test_delta.py`` and the
``make delta-smoke`` gate.
"""

from __future__ import annotations

from datetime import date

from repro import kernels, obs
from repro.bgp.collector import RibSnapshot, RouteGroup
from repro.bgp.policy import RouteClass
from repro.bgp.propagation import PropagationEngine
from repro.bgp.table import Prefix2AS
from repro.delta.cover import RouteCoverIndex, vrp_churn, vrp_delta
from repro.delta.events import DeltaState, Event, apply_raw
from repro.delta.rebuild import recompute_world, route_table
from repro.ihr.pipeline import transit_groups_indexed
from repro.ihr.records import IHRDataset, PrefixOriginRecord, TransitGroup
from repro.irr.validation import IRRStatus, seed_memo, validate_irr_many
from repro.net.prefix import Prefix
from repro.rpki.rov import ROVValidator
from repro.rpki.validator import IncrementalRelyingParty
from repro.scenario.world import World
from repro.topology.classify import classify_all

__all__ = ["LiveWorld", "run_job_at"]

#: The four route classes a bucket key can carry.
_ALL_CLASSES = tuple(
    RouteClass(rpki_invalid=rpki, irr_invalid=irr)
    for rpki in (False, True)
    for irr in (False, True)
)


class LiveWorld:
    """A world plus an event cursor, materialisable at any instant."""

    def __init__(self, base: World):
        self._base = base
        self._state = DeltaState.from_world(base)
        self._date: date = base.config.snapshot_date
        self._rp = IncrementalRelyingParty(self._state.repository)
        # The base validator is reused as-is until the first RPKI event:
        # its VRP set is exactly what the relying party emits for the
        # unmutated repository, and its memo is warm from the build.
        self._rov: ROVValidator = base.rov
        self._routes = route_table(base)
        self._cover = RouteCoverIndex(self._routes)
        with obs.span("delta.init", routes=len(self._routes)):
            self._rpki_status = dict(base.rov.validate_many(self._routes))
            irr_status = validate_irr_many(base.irr, self._routes)
            self._irr_status = dict(irr_status)
            # The cloned registry starts with an empty (version-fresh)
            # memo; seed it so the first IRR event only walks its cover
            # set instead of the whole table.
            seed_memo(self._state.irr, irr_status)
        self._groups: dict[tuple[int, RouteClass], set[Prefix]] = {}
        for prefix, asn in self._routes:
            self._groups.setdefault(
                (asn, self._route_class(prefix, asn)), set()
            ).add(prefix)
        self._engine: PropagationEngine = base.engine
        self._topo_version = 0
        # Interned effective-filter signatures, surviving engine
        # rebuilds: the transit cache keys on them so a policy flip only
        # invalidates the route classes whose filters actually changed.
        self._signature_ids: dict[tuple, int] = {}
        self._transit_cache: dict[tuple, TransitGroup | None] = {}
        self._events_applied = 0
        self._cached_world: World | None = base

    # -- bookkeeping ---------------------------------------------------------

    @property
    def base(self) -> World:
        """The world this live view started from."""
        return self._base

    @property
    def events_applied(self) -> int:
        """Number of events applied so far."""
        return self._events_applied

    @property
    def current_date(self) -> date:
        """The instant the live world currently answers for."""
        return self._date

    def _route_class(self, prefix: Prefix, asn: int) -> RouteClass:
        return RouteClass(
            rpki_invalid=self._rpki_status[(prefix, asn)].is_invalid,
            irr_invalid=self._irr_status[(prefix, asn)]
            is IRRStatus.INVALID_ORIGIN,
        )

    def _signature_id(self, engine: PropagationEngine, rc: RouteClass) -> int:
        signature = engine.class_filters(rc).signature
        sig_id = self._signature_ids.get(signature)
        if sig_id is None:
            sig_id = len(self._signature_ids)
            self._signature_ids[signature] = sig_id
        return sig_id

    # -- event application ---------------------------------------------------

    def apply(self, event: Event) -> str:
        """Apply one event and incrementally update derived state.

        Returns the domain tag (``rpki``/``irr``/``manrs``/``topology``/
        ``policy``) the event landed in, so callers can attribute cost.
        """
        with obs.span("delta.apply", event=type(event).__name__):
            domain = apply_raw(self._state, event)
            if domain == "rpki":
                self._refresh_vrps()
            elif domain == "irr":
                self._reclassify_irr(event.route.prefix)
            elif domain == "topology":
                self._rebuild_engine(adopt=False)
                self._topo_version += 1
            elif domain == "policy":
                self._rebuild_engine(adopt=True)
            # "manrs" events only touch the participants dataset, which
            # serialises straight from the (already mutated) registry.
            self._events_applied += 1
            self._cached_world = None
            obs.add("delta.events_applied")
            obs.add(f"delta.events.{domain}")
            return domain

    def advance_to(self, as_of: date) -> None:
        """Move the observation instant (ROA validity windows shift)."""
        if as_of == self._date:
            return
        with obs.span("delta.advance", to=as_of.isoformat()):
            self._date = as_of
            self._refresh_vrps(refresh_plans=False)
            self._cached_world = None

    def _refresh_vrps(self, refresh_plans: bool = True) -> None:
        if refresh_plans:
            # The incremental RP's staleness fingerprint only tracks
            # object counts; event streams can remove+add without
            # changing them, so invalidate explicitly.
            self._rp.refresh()
        report = self._rp.validate(self._date)
        old_vrps = self._rov._vrps  # noqa: SLF001 - same-package coupling
        changed = vrp_delta(old_vrps, report.vrps)
        if not changed:
            # Identical VRP multiset: every covering set, hence every
            # verdict and the (sorted) serialisation, is unchanged.
            return
        added, removed = vrp_churn(old_vrps, report.vrps)
        obs.add("delta.vrps_added", added)
        obs.add("delta.vrps_removed", removed)
        new_rov = ROVValidator(report.vrps)
        carried = new_rov.seed_from(self._rov, changed)
        obs.add("delta.rov_verdicts_carried", carried)
        cover = self._cover.affected(changed)
        obs.add("delta.rpki_cover_routes", len(cover))
        cover_routes = [self._routes[i] for i in cover]
        new_status = new_rov.validate_many(cover_routes)
        for key in cover_routes:
            old = self._rpki_status[key]
            new = new_status[key]
            if new is old:
                continue
            if new.is_invalid != old.is_invalid:
                self._regroup(key, rpki_flipped=True)
            self._rpki_status[key] = new
        self._rov = new_rov

    def _reclassify_irr(self, changed_prefix: Prefix) -> None:
        cover = self._cover.affected([changed_prefix])
        obs.add("delta.irr_cover_routes", len(cover))
        cover_set = set(cover)
        # Carry every untouched verdict into the registry's fresh
        # (version-tagged) memo; only the cover set is re-walked.
        seed_memo(
            self._state.irr,
            {
                key: status
                for index, key in enumerate(self._routes)
                if index not in cover_set
                for status in (self._irr_status[key],)
            },
        )
        cover_routes = [self._routes[i] for i in cover]
        new_status = validate_irr_many(self._state.irr, cover_routes)
        for key in cover_routes:
            old = self._irr_status[key]
            new = new_status[key]
            if new is old:
                continue
            if (new is IRRStatus.INVALID_ORIGIN) != (
                old is IRRStatus.INVALID_ORIGIN
            ):
                self._regroup(key, rpki_flipped=False)
            self._irr_status[key] = new

    def _regroup(self, key: tuple[Prefix, int], rpki_flipped: bool) -> None:
        """Move one route between (origin, class) buckets after a flip."""
        prefix, asn = key
        old_class = self._route_class(prefix, asn)
        if rpki_flipped:
            new_class = RouteClass(
                rpki_invalid=not old_class.rpki_invalid,
                irr_invalid=old_class.irr_invalid,
            )
        else:
            new_class = RouteClass(
                rpki_invalid=old_class.rpki_invalid,
                irr_invalid=not old_class.irr_invalid,
            )
        old_bucket = self._groups[(asn, old_class)]
        old_bucket.discard(prefix)
        if not old_bucket:
            del self._groups[(asn, old_class)]
        self._groups.setdefault((asn, new_class), set()).add(prefix)
        obs.add("delta.routes_regrouped")

    def _rebuild_engine(self, adopt: bool) -> None:
        previous = self._engine
        self._engine = PropagationEngine(
            self._state.topology, self._state.policies
        )
        obs.add("delta.engine_rebuilds")
        if adopt:
            carried = self._engine.adopt_cache(previous)
            obs.add("delta.paths_carried", carried)

    # -- materialisation -----------------------------------------------------

    def world(self) -> World:
        """The full ``World`` at the current instant (cached until the
        next event); digest-equal to a cold rebuild of the same events."""
        if self._cached_world is not None:
            return self._cached_world
        with obs.span(
            "delta.materialise", events_applied=self._events_applied
        ):
            world = self._materialise()
        self._cached_world = world
        return world

    def _materialise(self) -> World:
        base = self._base
        engine = self._engine
        keys = sorted(
            self._groups,
            key=lambda key: (key[0], key[1].rpki_invalid, key[1].irr_invalid),
        )
        vantage_points = base.vantage_points
        engine.ensure_cache_capacity(len(keys))
        if kernels.use_numpy():
            paths_by_key = engine.paths_to_many(keys, vantage_points)
        else:
            paths_by_key = [
                engine.paths_to(origin, vantage_points, route_class)
                for origin, route_class in keys
            ]
        groups = [
            RouteGroup(
                origin=origin,
                route_class=route_class,
                prefixes=tuple(sorted(self._groups[(origin, route_class)])),
                paths=paths,
            )
            for (origin, route_class), paths in zip(keys, paths_by_key)
        ]
        rib = RibSnapshot(vantage_points=vantage_points, groups=groups)
        prefix2as = Prefix2AS.from_rib(rib)
        ihr = self._derive_ihr(rib, engine)
        config = base.config
        if self._date != config.snapshot_date:
            from dataclasses import replace

            config = replace(config, snapshot_date=self._date)
        size_of = (
            classify_all(self._state.topology)
            if self._state.topology_changed
            else dict(base.size_of)
        )
        return World(
            config=config,
            seed=base.seed,
            topology=self._state.topology,
            quiescent=base.quiescent,
            as2org=base.as2org,
            size_of=size_of,
            manrs=self._state.manrs,
            address_space=base.address_space,
            originations=base.originations,
            behaviors=base.behaviors,
            policies=self._state.policies,
            rpki_repository=self._state.repository,
            irr=self._state.irr,
            engine=engine,
            vantage_points=vantage_points,
            rov=self._rov,
            rib=rib,
            ihr=ihr,
            prefix2as=prefix2as,
            scale=base.scale,
        )

    def _derive_ihr(
        self, rib: RibSnapshot, engine: PropagationEngine
    ) -> IHRDataset:
        """The IHR tables, with per-group transit results cached.

        Record order mirrors :func:`repro.ihr.pipeline.build_ihr_dataset`
        exactly: prefix origins in visible-group order, transit groups in
        visible order restricted to groups with scores.  A group's transit
        result is a pure function of (origin, effective-filter signature,
        topology state, prefixes, statuses) — everything in the cache key
        — so cached entries splice in byte-identically.
        """
        visible = [group for group in rib.groups if group.paths]
        prefix_origins: list[PrefixOriginRecord] = []
        group_statuses: list[tuple] = []
        cache_keys: list[tuple] = []
        for group in visible:
            statuses = tuple(
                (
                    self._rpki_status[(prefix, group.origin)],
                    self._irr_status[(prefix, group.origin)],
                )
                for prefix in group.prefixes
            )
            group_statuses.append(statuses)
            visibility = len(group.paths)
            for prefix, (rpki_status, irr_status) in zip(
                group.prefixes, statuses
            ):
                prefix_origins.append(
                    PrefixOriginRecord(
                        prefix=prefix,
                        origin=group.origin,
                        rpki=rpki_status,
                        irr=irr_status,
                        visibility=visibility,
                    )
                )
            cache_keys.append(
                (
                    group.origin,
                    self._signature_id(engine, group.route_class),
                    self._topo_version,
                    group.prefixes,
                    statuses,
                )
            )
        miss_indices = [
            index
            for index, cache_key in enumerate(cache_keys)
            if cache_key not in self._transit_cache
        ]
        obs.add("delta.transit_hits", len(visible) - len(miss_indices))
        obs.add("delta.transit_misses", len(miss_indices))
        if miss_indices:
            scored = dict(
                transit_groups_indexed(
                    [visible[i] for i in miss_indices],
                    [group_statuses[i] for i in miss_indices],
                    self._state.topology,
                )
            )
            for local, index in enumerate(miss_indices):
                self._transit_cache[cache_keys[index]] = scored.get(local)
        transit_groups = [
            transit_group
            for cache_key in cache_keys
            for transit_group in (self._transit_cache[cache_key],)
            if transit_group is not None
        ]
        obs.add("ihr.prefix_origins", len(prefix_origins))
        obs.add("ihr.transit_groups", len(transit_groups))
        return IHRDataset(
            prefix_origins=prefix_origins, transit_groups=transit_groups
        )


def run_job_at(job, at: str) -> dict[str, dict[str, str]]:
    """Run a sweep/serve job against a live world advanced to ``at``.

    Module-level (not a closure) so the serve layer can dispatch it into
    a spawn-context process pool.  Mirrors
    :func:`repro.sweep.worker.run_job` but wraps the cached world in a
    :class:`LiveWorld` and moves the observation instant first — the
    serving layer's "answer as of this date" hook.
    """
    import hashlib

    from repro.experiments.common import world_cache
    from repro.experiments.registry import select

    as_of = date.fromisoformat(at)
    with obs.span(
        "serve.job_at",
        job=job.job_id[:12],
        at=at,
        scale=job.scale,
        seed=job.seed,
    ):
        base = world_cache(job.scale, job.seed, config=job.config())
        live = LiveWorld(base)
        live.advance_to(as_of)
        world = live.world()
        payload: dict[str, dict[str, str]] = {}
        for spec in select(job.experiments or None):
            with obs.span(f"sweep.experiment.{spec.name}"):
                text = spec.render(spec.run(world))
            payload[spec.name] = {
                "text": text,
                "sha256": hashlib.sha256(text.encode()).hexdigest(),
            }
    return payload
