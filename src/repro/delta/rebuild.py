"""Cold rebuild: the reference semantics of an event stream.

``cold_rebuild(base, events)`` applies every event to a fresh
:class:`~repro.delta.events.DeltaState` clone of ``base`` and re-runs
the *entire* measurement pipeline over the mutated inputs — relying
party, route classification, propagation, collection, IHR derivation —
exactly as :func:`repro.scenario.build.build_world` runs it over freshly
generated inputs.  This is what the live world's incremental apply is
checked against: at every checkpoint, ``world_digest(live.world())``
must equal ``world_digest(cold_rebuild(base, applied_events))``.

Ground truth that events cannot change (originations, behaviours,
address space, as2org, vantage points) is carried over from ``base``
unchanged; in particular the vantage-point set is **never re-selected**,
in either path — re-selection depends on size classes, which a topology
event may shift, and the two paths diverging on vantage points would
make every downstream artifact incomparable.
"""

from __future__ import annotations

from dataclasses import replace
from datetime import date
from typing import Iterable, Sequence

from repro import obs
from repro.bgp.announcement import Announcement
from repro.bgp.collector import collect_rib
from repro.bgp.policy import RouteClass
from repro.bgp.propagation import PropagationEngine
from repro.bgp.table import Prefix2AS
from repro.delta.events import DeltaState, Event, apply_raw
from repro.ihr.pipeline import build_ihr_dataset
from repro.irr.validation import IRRStatus, validate_irr_many
from repro.net.prefix import Prefix
from repro.rpki.rov import ROVValidator
from repro.rpki.validator import RelyingParty
from repro.scenario.world import World
from repro.topology.classify import classify_all

__all__ = ["route_table", "recompute_world", "cold_rebuild"]


def route_table(world: World) -> list[tuple[Prefix, int]]:
    """The fixed announced-route table, in the builder's classify order.

    Events change registries and policies, never what is announced, so
    this table is shared by the live world, the rebuild path, and the
    cover index.
    """
    return [
        (origination.prefix, asn)
        for asn in sorted(world.originations)
        for origination in world.originations[asn]
    ]


def recompute_world(
    state: DeltaState, base: World, as_of: date | None = None
) -> World:
    """Run the full derived pipeline over a (possibly mutated) state.

    Mirrors the derived half of ``build_world`` stage for stage; with an
    unmutated state and ``as_of=None`` the result digest-equals ``base``.
    """
    snapshot = as_of or base.config.snapshot_date
    config = base.config
    if snapshot != config.snapshot_date:
        config = replace(config, snapshot_date=snapshot)
    with obs.span("delta.rebuild", events_seen=int(state.topology_changed)):
        rov = ROVValidator(RelyingParty(state.repository).validate(snapshot).vrps)
        routes = route_table(base)
        rpki_by_route = rov.validate_many(routes)
        irr_by_route = validate_irr_many(state.irr, routes)
        announcements = [
            (
                Announcement(prefix, asn),
                RouteClass(
                    rpki_invalid=rpki_by_route[(prefix, asn)].is_invalid,
                    irr_invalid=irr_by_route[(prefix, asn)]
                    is IRRStatus.INVALID_ORIGIN,
                ),
            )
            for prefix, asn in routes
        ]
        engine = PropagationEngine(state.topology, state.policies)
        rib = collect_rib(engine, announcements, base.vantage_points)
        prefix2as = Prefix2AS.from_rib(rib)
        ihr = build_ihr_dataset(rib, rov, state.irr, state.topology)
        size_of = (
            classify_all(state.topology)
            if state.topology_changed
            else dict(base.size_of)
        )
    return World(
        config=config,
        seed=base.seed,
        topology=state.topology,
        quiescent=base.quiescent,
        as2org=base.as2org,
        size_of=size_of,
        manrs=state.manrs,
        address_space=base.address_space,
        originations=base.originations,
        behaviors=base.behaviors,
        policies=state.policies,
        rpki_repository=state.repository,
        irr=state.irr,
        engine=engine,
        vantage_points=base.vantage_points,
        rov=rov,
        rib=rib,
        ihr=ihr,
        prefix2as=prefix2as,
        scale=base.scale,
    )


def cold_rebuild(
    base: World, events: Sequence[Event] | Iterable[Event], as_of: date | None = None
) -> World:
    """Apply ``events`` to a clone of ``base`` and rebuild everything."""
    state = DeltaState.from_world(base)
    applied = 0
    for event in events:
        apply_raw(state, event)
        applied += 1
    obs.add("delta.rebuild_events", applied)
    return recompute_world(state, base, as_of)
