"""Regional Internet Registries and address allocation."""

from repro.registry.allocation import AddressSpace, Delegation, parse_delegations
from repro.registry.rir import ALL_RIRS, RIR, rir_for_country, rir_for_prefix

__all__ = [
    "ALL_RIRS",
    "AddressSpace",
    "Delegation",
    "RIR",
    "parse_delegations",
    "rir_for_country",
    "rir_for_prefix",
]
