"""The five Regional Internet Registries and their address pools.

Each RIR manages a disjoint slice of the IPv4 (and IPv6) space and acts as
the trust anchor for RPKI certification of that space, and as the operator
of the authoritative IRR database for it.  The pools used here are
synthetic /8 blocks — the analyses only require that the pools are disjoint
and attributable, not that they match IANA's actual allocation history.
"""

from __future__ import annotations

from enum import Enum

from repro.errors import AllocationError
from repro.net.prefix import Prefix

__all__ = ["RIR", "rir_for_prefix", "ALL_RIRS"]


class RIR(str, Enum):
    """A Regional Internet Registry service region."""

    ARIN = "ARIN"
    RIPE = "RIPE"
    APNIC = "APNIC"
    LACNIC = "LACNIC"
    AFRINIC = "AFRINIC"

    @property
    def v4_pools(self) -> tuple[Prefix, ...]:
        """The synthetic IPv4 /8 blocks this RIR administers."""
        return _V4_POOLS[self]

    @property
    def v6_pool(self) -> Prefix:
        """The synthetic IPv6 /20 block this RIR administers."""
        return _V6_POOLS[self]

    @property
    def countries(self) -> tuple[str, ...]:
        """Representative ISO country codes in this service region."""
        return _COUNTRIES[self]


#: Region sizes are skewed like reality: ARIN and RIPE hold the most v4
#: space, AFRINIC the least.  Pools deliberately avoid 0/8 and 10/8.
_V4_POOLS: dict[RIR, tuple[Prefix, ...]] = {
    RIR.ARIN: tuple(Prefix.parse(p) for p in (
        "12.0.0.0/8", "13.0.0.0/8", "16.0.0.0/8", "17.0.0.0/8",
        "18.0.0.0/8", "20.0.0.0/8", "23.0.0.0/8", "24.0.0.0/8",
    )),
    RIR.RIPE: tuple(Prefix.parse(p) for p in (
        "31.0.0.0/8", "37.0.0.0/8", "46.0.0.0/8", "62.0.0.0/8",
        "77.0.0.0/8", "78.0.0.0/8", "80.0.0.0/8",
    )),
    RIR.APNIC: tuple(Prefix.parse(p) for p in (
        "101.0.0.0/8", "103.0.0.0/8", "110.0.0.0/8", "111.0.0.0/8",
        "112.0.0.0/8", "114.0.0.0/8",
    )),
    RIR.LACNIC: tuple(Prefix.parse(p) for p in (
        "177.0.0.0/8", "179.0.0.0/8", "181.0.0.0/8", "186.0.0.0/8",
    )),
    RIR.AFRINIC: tuple(Prefix.parse(p) for p in (
        "41.0.0.0/8", "102.0.0.0/8", "105.0.0.0/8",
    )),
}

_V6_POOLS: dict[RIR, Prefix] = {
    RIR.ARIN: Prefix.parse("2600::/20"),
    RIR.RIPE: Prefix.parse("2a00::/20"),
    RIR.APNIC: Prefix.parse("2400::/20"),
    RIR.LACNIC: Prefix.parse("2800::/20"),
    RIR.AFRINIC: Prefix.parse("2c00::/20"),
}

_COUNTRIES: dict[RIR, tuple[str, ...]] = {
    RIR.ARIN: ("US", "CA"),
    RIR.RIPE: ("DE", "GB", "FR", "NL", "RU", "IT"),
    RIR.APNIC: ("CN", "JP", "IN", "AU", "KR", "ID"),
    RIR.LACNIC: ("BR", "AR", "MX", "CL", "CO"),
    RIR.AFRINIC: ("ZA", "NG", "EG", "KE"),
}

ALL_RIRS: tuple[RIR, ...] = tuple(RIR)


def rir_for_prefix(prefix: Prefix) -> RIR:
    """Map a prefix back to the RIR whose pool contains it."""
    for rir in ALL_RIRS:
        if prefix.version == 4:
            if any(pool.contains(prefix) for pool in rir.v4_pools):
                return rir
        else:
            if rir.v6_pool.contains(prefix):
                return rir
    raise AllocationError(f"{prefix} is not in any RIR pool")


def rir_for_country(country: str) -> RIR:
    """Map an ISO country code to its RIR service region."""
    for rir, countries in _COUNTRIES.items():
        if country in countries:
            return rir
    raise AllocationError(f"country {country!r} not in any modelled region")
