"""Address allocation engine (the number-resource side of an RIR).

A buddy allocator hands out CIDR blocks from each RIR's pools and records a
:class:`Delegation` per block, mirroring the RIR "delegated" statistics
files.  Delegations carry the holder organisation, date, and a ``legacy``
flag — legacy space matters to the paper because it is hard to certify in
RPKI (§8.6 cites it as the reason MANRS saturation cannot reach 100%).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import date
from typing import Iterable

from repro.errors import AllocationError
from repro.net.prefix import Prefix
from repro.net.radix import RadixTree
from repro.registry.rir import RIR

__all__ = ["Delegation", "AddressSpace", "parse_delegations"]


@dataclass(frozen=True)
class Delegation:
    """A block of address space delegated to an organisation."""

    prefix: Prefix
    rir: RIR
    org_id: str
    allocated_on: date
    legacy: bool = False

    def __str__(self) -> str:
        kind = "legacy" if self.legacy else "allocated"
        return f"{self.rir.value}|{self.org_id}|{self.prefix}|{kind}"


@dataclass
class _Pool:
    """Buddy free lists for one RIR, keyed by prefix length."""

    free: dict[int, list[Prefix]] = field(default_factory=dict)

    def add(self, prefix: Prefix) -> None:
        self.free.setdefault(prefix.length, []).append(prefix)

    def take(self, length: int) -> Prefix:
        """Pop a block of exactly ``length``, splitting larger blocks."""
        if length in self.free and self.free[length]:
            return self.free[length].pop()
        # Find the longest available block shorter than `length` to split.
        for shorter in range(length - 1, -1, -1):
            blocks = self.free.get(shorter)
            if blocks:
                block = blocks.pop()
                break
        else:
            raise AllocationError(f"no free block for /{length}")
        # Split down to the requested size, returning halves to free lists.
        while block.length < length:
            low, high = block.subnets()
            self.add(high)
            block = low
        return block


class AddressSpace:
    """Allocator + ledger of delegations across all five RIRs.

    Allocation order is deterministic: blocks are split lowest-address
    first, so two runs with the same request sequence produce identical
    delegations (required for reproducible scenarios).
    """

    def __init__(self) -> None:
        self._pools: dict[tuple[RIR, int], _Pool] = {}
        for rir in RIR:
            v4_pool = _Pool()
            for block in rir.v4_pools:
                v4_pool.add(block)
            # Reverse so .pop() serves lowest-address blocks first.
            for blocks in v4_pool.free.values():
                blocks.sort(reverse=True)
            self._pools[(rir, 4)] = v4_pool
            v6_pool = _Pool()
            v6_pool.add(rir.v6_pool)
            self._pools[(rir, 6)] = v6_pool
        self._delegations: list[Delegation] = []
        self._by_org: dict[str, list[Delegation]] = {}
        self._index: RadixTree[Delegation] = RadixTree()
        # Delegations whose radix indexing is deferred (restore() fills
        # this); drained on the first prefix lookup.
        self._unindexed: list[Delegation] = []

    def allocate(
        self,
        rir: RIR,
        length: int,
        org_id: str,
        allocated_on: date,
        version: int = 4,
        legacy: bool = False,
    ) -> Delegation:
        """Delegate one block of ``/length`` from ``rir`` to ``org_id``."""
        max_bits = 32 if version == 4 else 128
        if not 0 < length <= max_bits:
            raise AllocationError(f"/{length} invalid for IPv{version}")
        pool = self._pools[(rir, version)]
        block = pool.take(length)
        delegation = Delegation(block, rir, org_id, allocated_on, legacy)
        self._delegations.append(delegation)
        self._by_org.setdefault(org_id, []).append(delegation)
        # Index lazily (drained by holder_of): scenario builds allocate
        # tens of thousands of blocks and never look one up by prefix.
        self._unindexed.append(delegation)
        return delegation

    @classmethod
    def restore(cls, delegations: Iterable[Delegation]) -> "AddressSpace":
        """Rebuild the ledger from a recorded delegation sequence.

        The free-pool state is deliberately *not* reconstructed: a
        restored space answers every ledger query (``delegations``,
        ``delegations_for``, ``holder_of``) identically to the original,
        but further :meth:`allocate` calls raise — checkpointed worlds
        are finished building, and handing out already-delegated blocks
        again would corrupt them silently.

        The prefix radix index is built lazily on the first
        :meth:`holder_of` call: most warm-started workloads never look a
        prefix up here, and eagerly indexing tens of thousands of
        delegations was one of the larger warm-start costs.
        """
        space = cls()
        space._pools = {key: _Pool() for key in space._pools}
        for delegation in delegations:
            space._delegations.append(delegation)
            space._by_org.setdefault(delegation.org_id, []).append(delegation)
        space._unindexed = list(space._delegations)
        return space

    @property
    def delegations(self) -> tuple[Delegation, ...]:
        """All delegations made so far, in allocation order."""
        return tuple(self._delegations)

    def delegations_for(self, org_id: str) -> list[Delegation]:
        """Delegations held by one organisation."""
        return list(self._by_org.get(org_id, ()))

    def holder_of(self, prefix: Prefix) -> Delegation | None:
        """The delegation covering ``prefix``, if any.

        Delegations never overlap (the buddy allocator guarantees
        disjointness), so at most one can cover a prefix.
        """
        if self._unindexed:
            for delegation in self._unindexed:
                self._index.insert(delegation.prefix, delegation)
            self._unindexed = []
        covering = self._index.covering(prefix)
        return covering[0] if covering else None

    def serialize(self) -> str:
        """Render the ledger in a delegated-stats-like text format."""
        return "\n".join(str(d) for d in self._delegations)


def parse_delegations(text: str) -> list[Delegation]:
    """Parse the format produced by :meth:`AddressSpace.serialize`.

    The allocation date is not stored in the line format (matching the
    real delegated-stats files' coarse dates); parsed records carry a
    placeholder epoch date.
    """
    delegations = []
    for line_number, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        fields = line.split("|")
        if len(fields) != 4:
            raise AllocationError(
                f"bad delegation record at line {line_number}"
            )
        rir_name, org_id, prefix_text, kind = fields
        try:
            rir = RIR(rir_name)
            prefix = Prefix.parse(prefix_text)
        except ValueError as exc:
            raise AllocationError(
                f"bad delegation record at line {line_number}: {line!r}"
            ) from exc
        if kind not in ("allocated", "legacy"):
            raise AllocationError(
                f"unknown delegation kind {kind!r} at line {line_number}"
            )
        delegations.append(
            Delegation(
                prefix=prefix,
                rir=rir,
                org_id=org_id,
                allocated_on=date(1970, 1, 1),
                legacy=kind == "legacy",
            )
        )
    return delegations
