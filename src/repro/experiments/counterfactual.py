"""Counterfactual: what if every MANRS member fully complied?

§10 asks how MANRS could "increase its positive influence on routing
security".  This experiment answers the quantitative half: rebuild the
world's import policies so that **every member deploys full ROV and
complete Action 1 filter coverage**, re-run propagation, and compare
the security metrics against the measured world:

* how many RPKI-Invalid announcements still reach the collectors;
* the total invalid transit (invalid prefix-origin pairs summed over
  transiting ASes);
* Figure 9's separation (invalid routes avoiding MANRS transit).

The gap between "measured" and "full compliance" is the enforcement
headroom the paper's discussion section is about.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.bgp.announcement import Announcement
from repro.bgp.collector import RibSnapshot, collect_rib
from repro.bgp.propagation import PropagationEngine
from repro.core.impact import preference_scores
from repro.ihr.pipeline import build_ihr_dataset
from repro.scenario.world import World

__all__ = ["ComplianceScenario", "CounterfactualResult", "run", "render"]


@dataclass(frozen=True)
class ComplianceScenario:
    """Security metrics of one policy configuration."""

    label: str
    visible_invalid_announcements: int
    #: Invalid (prefix, transit) pairs where the transit is a member —
    #: the traffic MANRS networks themselves still carry.  Total pairs
    #: can *rise* under stricter filtering (invalids detour onto longer
    #: non-member paths), so the member-carried count is the honest
    #: metric.
    invalid_member_transit_pairs: int
    invalid_transit_pairs: int
    invalid_prefer_manrs: float


@dataclass(frozen=True)
class CounterfactualResult:
    """Measured world vs full-member-compliance world."""

    measured: ComplianceScenario
    full_compliance: ComplianceScenario

    @property
    def invalid_visibility_reduction(self) -> float:
        """Fractional drop in visible invalid announcements."""
        baseline = self.measured.visible_invalid_announcements
        if baseline == 0:
            return 0.0
        return 1.0 - self.full_compliance.visible_invalid_announcements / baseline


def run(world: World) -> CounterfactualResult:
    """Compare the measured world against full member compliance."""
    measured = _scenario("measured", world, world.rib)

    members = world.members()
    policies = dict(world.policies)
    for asn in members:
        if asn not in policies:
            continue
        policies[asn] = replace(
            policies[asn],
            rov=True,
            filter_customers_rpki=True,
            filter_customers_irr=True,
            customer_filter_coverage=1.0,
        )
    engine = PropagationEngine(world.topology, policies)
    announcements = [
        (Announcement(prefix, group.origin), group.route_class)
        for group in world.rib.groups
        for prefix in group.prefixes
    ]
    rib = collect_rib(engine, announcements, world.vantage_points)
    compliant = _scenario("full compliance", world, rib)
    return CounterfactualResult(measured=measured, full_compliance=compliant)


def _scenario(label: str, world: World, rib: RibSnapshot) -> ComplianceScenario:
    dataset = build_ihr_dataset(rib, world.rov, world.irr, world.topology)
    visible_invalid = sum(
        1 for record in dataset.prefix_origins if record.rpki.is_invalid
    )
    members = world.members()
    invalid_transit = 0
    invalid_member_transit = 0
    for group in dataset.transit_groups:
        member_transits = sum(1 for t in group.transits if t in members)
        for _, (rpki, _irr) in zip(group.prefixes, group.statuses):
            if rpki.is_invalid:
                invalid_transit += len(group.transits)
                invalid_member_transit += member_transits
    scores = preference_scores(dataset, world.members())
    invalid_scores = scores["invalid"]
    prefer = (
        sum(1 for s in invalid_scores if s > 0) / len(invalid_scores)
        if invalid_scores
        else 0.0
    )
    return ComplianceScenario(
        label=label,
        visible_invalid_announcements=visible_invalid,
        invalid_member_transit_pairs=invalid_member_transit,
        invalid_transit_pairs=invalid_transit,
        invalid_prefer_manrs=prefer,
    )


def render(result: CounterfactualResult) -> str:
    """Tabulate measured vs counterfactual."""
    lines = [
        "Counterfactual — full MANRS member compliance",
        f"{'scenario':>16}  {'visible invalids':>16}  "
        f"{'via members':>11}  {'via anyone':>10}  {'%invalid>0 pref':>15}",
    ]
    for scenario in (result.measured, result.full_compliance):
        lines.append(
            f"{scenario.label:>16}  "
            f"{scenario.visible_invalid_announcements:16d}  "
            f"{scenario.invalid_member_transit_pairs:11d}  "
            f"{scenario.invalid_transit_pairs:10d}  "
            f"{100 * scenario.invalid_prefer_manrs:14.1f}%"
        )
    lines.append(
        f"invalid visibility reduced by "
        f"{100 * result.invalid_visibility_reduction:.1f}%"
    )
    return "\n".join(lines)
