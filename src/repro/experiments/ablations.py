"""Ablations for the design choices DESIGN.md §6 calls out.

* **ROV-deployment sensitivity** — Figure 9's separation between Invalid
  and Valid preference scores as a function of how many large MANRS
  transits deploy ROV.  Turning ROV off should erase the separation:
  the preference-score signal measures *filtering*, not membership.
* **Vantage-point sensitivity** — §11's "limited routing table
  visibility" limitation made quantitative: how Action 4 conformance
  estimates move as the collector's vantage-point set shrinks.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.bgp.collector import collect_rib
from repro.bgp.policy import ASPolicy, RouteClass
from repro.bgp.propagation import PropagationEngine
from repro.core.conformance import (
    is_action4_conformant,
    origination_stats,
)
from repro.core.impact import preference_scores
from repro.ihr.pipeline import build_ihr_dataset
from repro.irr.validation import IRRStatus, validate_irr
from repro.manrs.actions import Program
from repro.scenario.world import World
from repro.topology.classify import SizeClass

__all__ = [
    "RovAblationPoint",
    "rov_deployment_ablation",
    "VisibilityPoint",
    "visibility_ablation",
    "render_rov_ablation",
    "render_visibility_ablation",
]


@dataclass(frozen=True)
class RovAblationPoint:
    """Figure 9 statistics at one large-member ROV deployment level."""

    deployed_large_members: int
    invalid_prefer_manrs: float
    valid_prefer_manrs: float

    @property
    def separation(self) -> float:
        """Valid minus Invalid MANRS-preference fraction."""
        return self.valid_prefer_manrs - self.invalid_prefer_manrs


def rov_deployment_ablation(
    world: World, levels: tuple[float, ...] = (0.0, 0.25, 0.5, 1.0)
) -> list[RovAblationPoint]:
    """Recompute Figure 9 while sweeping ROV among large MANRS transits.

    Re-propagates the world's announcements under modified policies and
    rebuilds the transit dataset per level — the full measurement loop,
    not a shortcut on cached paths.
    """
    members = world.members()
    large_members = sorted(
        (
            asn
            for asn, size in world.size_of.items()
            if size is SizeClass.LARGE and asn in members
        ),
        key=lambda a: -len(world.topology.customer_cone(a)),
    )
    announcements = [
        (record_announcement, group.route_class)
        for group in world.rib.groups
        for record_announcement in _announcements_of(group)
    ]
    points = []
    for level in levels:
        n_deployed = round(level * len(large_members))
        policies = dict(world.policies)
        for index, asn in enumerate(large_members):
            policies[asn] = replace(
                policies[asn], rov=index < n_deployed
            )
        engine = PropagationEngine(world.topology, policies)
        rib = collect_rib(engine, announcements, world.vantage_points)
        dataset = build_ihr_dataset(rib, world.rov, world.irr, world.topology)
        scores = preference_scores(dataset, members)
        points.append(
            RovAblationPoint(
                deployed_large_members=n_deployed,
                invalid_prefer_manrs=_positive_fraction(scores["invalid"]),
                valid_prefer_manrs=_positive_fraction(scores["valid"]),
            )
        )
    return points


def _announcements_of(group):
    from repro.bgp.announcement import Announcement

    return [Announcement(prefix, group.origin) for prefix in group.prefixes]


def _positive_fraction(values: list[float]) -> float:
    if not values:
        return 0.0
    return sum(1 for v in values if v > 0) / len(values)


@dataclass(frozen=True)
class VisibilityPoint:
    """Conformance estimate at one vantage-point count (§11)."""

    n_vantage_points: int
    visible_prefix_origins: int
    isp_conformance_pct: float


def visibility_ablation(
    world: World, fractions: tuple[float, ...] = (0.1, 0.25, 0.5, 1.0)
) -> list[VisibilityPoint]:
    """Shrink the vantage-point set and re-estimate ISP Action 4
    conformance.

    Fewer vantage points means fewer observed prefix-origins, so
    unconformant announcements can escape scrutiny — the overestimation
    §11 warns about.
    """
    member_isps = world.manrs.member_asns(
        as_of=world.snapshot_date, program=Program.ISP
    )
    points = []
    for fraction in fractions:
        count = max(1, round(fraction * len(world.vantage_points)))
        vantage_points = world.vantage_points[:count]
        announcements = [
            (announcement, group.route_class)
            for group in world.rib.groups
            for announcement in _announcements_of(group)
        ]
        rib = collect_rib(world.engine, announcements, vantage_points)
        dataset = build_ihr_dataset(rib, world.rov, world.irr, world.topology)
        stats = origination_stats(dataset)
        conformant = sum(
            1
            for asn in member_isps
            if is_action4_conformant(stats.get(asn), Program.ISP)
        )
        points.append(
            VisibilityPoint(
                n_vantage_points=count,
                visible_prefix_origins=len(dataset.prefix_origins),
                isp_conformance_pct=100.0 * conformant / len(member_isps)
                if member_isps
                else 100.0,
            )
        )
    return points


def render_rov_ablation(points: list[RovAblationPoint]) -> str:
    """Tabulate the ROV sweep."""
    lines = [
        "Ablation — Figure 9 separation vs large-member ROV deployment",
        f"{'deployed':>8}  {'%invalid>0':>10}  {'%valid>0':>8}  {'separation':>10}",
    ]
    for point in points:
        lines.append(
            f"{point.deployed_large_members:8d}  "
            f"{100 * point.invalid_prefer_manrs:9.1f}%  "
            f"{100 * point.valid_prefer_manrs:7.1f}%  "
            f"{100 * point.separation:9.1f}%"
        )
    return "\n".join(lines)


def render_visibility_ablation(points: list[VisibilityPoint]) -> str:
    """Tabulate the vantage-point sweep."""
    lines = [
        "Ablation — conformance estimate vs collector visibility (§11)",
        f"{'VPs':>4}  {'visible pfx-origins':>19}  {'ISP conformance':>15}",
    ]
    for point in points:
        lines.append(
            f"{point.n_vantage_points:4d}  {point.visible_prefix_origins:19d}  "
            f"{point.isp_conformance_pct:14.1f}%"
        )
    return "\n".join(lines)
