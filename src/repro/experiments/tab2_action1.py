"""Table 2: Action 1 (route filtering) conformance by size class."""

from __future__ import annotations

from repro.core.report import Action1Summary, build_report
from repro.scenario.world import World
from repro.topology.classify import SizeClass

__all__ = ["run", "render"]


def run(world: World) -> dict[SizeClass, Action1Summary]:
    """Table 2's rows: transit-conformant and total-conformant counts."""
    return build_report(world).action1


def render(summaries: dict[SizeClass, Action1Summary]) -> str:
    """Tabulate Table 2."""
    lines = [
        "Table 2 — Action 1 conformance",
        f"{'size':>6}  {'transit conf.':>13}  {'total transit':>13}  "
        f"{'total conf.':>11}  {'total MANRS':>11}",
    ]
    for size in SizeClass:
        summary = summaries[size]
        lines.append(
            f"{size.value:>6}  {summary.transit_conformant:6d} "
            f"({summary.pct_transit_conformant:5.1f}%)  "
            f"{summary.transit_total:13d}  "
            f"{summary.total_conformant:4d} ({summary.pct_total_conformant:5.1f}%)  "
            f"{summary.total_members:11d}"
        )
    return "\n".join(lines)
