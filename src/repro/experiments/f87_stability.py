"""Finding 8.7 / §8.5: conformance stability over weekly snapshots."""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.stability import StabilityReport, conformance_stability
from repro.scenario.timeline import (
    PrefixChurn,
    WeeklyConformance,
    flagship_prefix_churn,
    weekly_member_conformance,
)
from repro.scenario.world import World

__all__ = ["StabilityResult", "run", "render"]


@dataclass(frozen=True)
class StabilityResult:
    """The weekly series plus the paper's stability classification."""

    weekly: WeeklyConformance
    report: StabilityReport
    #: Prefix-level churn of the top CDN originators (§8.5's CDN study).
    cdn_churn: dict[int, PrefixChurn]


def run(world: World, n_weeks: int = 12, seed: int = 0) -> StabilityResult:
    """Generate weekly snapshots and classify member stability."""
    weekly = weekly_member_conformance(world, n_weeks=n_weeks, seed=seed)
    report = conformance_stability(weekly.verdicts)
    churn = flagship_prefix_churn(world, n_weeks=n_weeks, seed=seed)
    return StabilityResult(weekly=weekly, report=report, cdn_churn=churn)


def render(result: StabilityResult) -> str:
    """Summarise the stable/flapping split and CDN prefix churn."""
    report = result.report
    lines = [
        f"Finding 8.7 — conformance stability over "
        f"{report.n_snapshots} weekly snapshots",
        f"consistently conformant:   {report.always_conformant}",
        f"consistently unconformant: {report.always_unconformant}",
        f"flapping:                  {report.flapping}",
    ]
    for index, churn in enumerate(result.cdn_churn.values(), start=1):
        lines.append(
            f"CDN{index} prefixes: {churn.stable} stable "
            f"({churn.status_changes} changed status), "
            f"{churn.withdrawn} withdrawn, {churn.added} new"
        )
    return "\n".join(lines)
