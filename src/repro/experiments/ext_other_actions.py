"""Extension: conformance to the actions the paper does *not* measure.

* **Action 3** (contact information): checked against the IRR aut-num
  objects and a PeeringDB-like registry — members keep fresher contacts.
* **Action 2** (SAV): a Spoofer-style campaign reproduces the Luckie et
  al. null result the paper cites in §4.4 — MANRS members are *not*
  measurably better at source address validation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.manrs.contacts import (
    PeeringDBLike,
    is_action3_conformant,
    populate_contacts,
)
from repro.manrs.sav import (
    SpooferCampaign,
    assign_sav_deployment,
    run_spoofer_campaign,
)
from repro.scenario.world import World

__all__ = ["OtherActionsResult", "run", "render"]


@dataclass(frozen=True)
class OtherActionsResult:
    """Action 2 and Action 3 statistics split by membership."""

    action3_member_rate: float
    action3_other_rate: float
    sav_member_rate: float
    sav_other_rate: float
    tested_members: int
    tested_others: int
    peeringdb: PeeringDBLike
    campaign: SpooferCampaign


def run(world: World, seed: int = 0) -> OtherActionsResult:
    """Compute Action 2/3 conformance splits for one world."""
    peeringdb = populate_contacts(world, seed=seed)
    members = world.members()
    snapshot = world.snapshot_date

    member_verdicts = []
    other_verdicts = []
    for asn in world.topology.asns:
        verdict = is_action3_conformant(asn, world.irr, peeringdb, snapshot)
        (member_verdicts if asn in members else other_verdicts).append(verdict)

    sav_truth = assign_sav_deployment(world, seed=seed)
    campaign = run_spoofer_campaign(world, sav_truth, seed=seed + 1)
    return OtherActionsResult(
        action3_member_rate=(
            sum(member_verdicts) / len(member_verdicts) if member_verdicts else 0.0
        ),
        action3_other_rate=(
            sum(other_verdicts) / len(other_verdicts) if other_verdicts else 0.0
        ),
        sav_member_rate=campaign.deployment_rate(members),
        sav_other_rate=campaign.deployment_rate(
            frozenset(world.topology.asns) - members
        ),
        tested_members=campaign.tested_count(members),
        tested_others=campaign.tested_count(
            frozenset(world.topology.asns) - members
        ),
        peeringdb=peeringdb,
        campaign=campaign,
    )


def render(result: OtherActionsResult) -> str:
    """Summarise Action 2/3 conformance."""
    return "\n".join(
        [
            "Extension — Actions 2 and 3",
            f"Action 3 (fresh contact info): members "
            f"{100 * result.action3_member_rate:.1f}% vs others "
            f"{100 * result.action3_other_rate:.1f}%",
            f"Action 2 (SAV, Spoofer campaign over "
            f"{result.tested_members}+{result.tested_others} networks): "
            f"members {100 * result.sav_member_rate:.1f}% vs others "
            f"{100 * result.sav_other_rate:.1f}% "
            "(no member advantage, per Luckie et al.)",
        ]
    )
