"""Figure 7: invalid prefixes propagated through each AS (Action 1).

7a — CDF of the percent of RPKI-Invalid (incl. invalid-length) prefixes
among everything each AS provides transit for; 7b — the same for
IRR-Invalid.  Populations as in Figure 5.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.conformance import propagation_stats
from repro.core.stats import CDF
from repro.experiments.common import POPULATIONS, group_metric, population_label
from repro.scenario.world import World
from repro.topology.classify import SizeClass

__all__ = ["Fig7Result", "run", "render"]

Population = tuple[SizeClass, bool]


@dataclass(frozen=True)
class Fig7Result:
    """Both Figure 7 panels."""

    rpki_cdf: dict[Population, CDF]
    irr_cdf: dict[Population, CDF]


def run(world: World) -> Fig7Result:
    """Compute Figure 7 over the IHR transit dataset."""
    stats = {
        asn: s for asn, s in propagation_stats(world.ihr).items() if s.total > 0
    }
    return Fig7Result(
        rpki_cdf=group_metric(world, stats, lambda s: s.pg_rpki_invalid),
        irr_cdf=group_metric(world, stats, lambda s: s.pg_irr_invalid),
    )


def render(result: Fig7Result) -> str:
    """Tabulate per-population propagation statistics."""
    lines = [
        "Figure 7 — invalid prefixes propagated, by population",
        f"{'population':>20}  {'n':>5}  {'zero-RPKI-inv':>13}  "
        f"{'max %RPKI':>9}  {'max %IRR':>8}",
    ]
    for population in POPULATIONS:
        size, member = population
        rpki = result.rpki_cdf[population]
        irr = result.irr_cdf[population]
        if rpki.n == 0:
            continue
        lines.append(
            f"{population_label(size, member):>20}  {rpki.n:5d}  "
            f"{100 * rpki.fraction_at_most(0.0):12.1f}%  "
            f"{rpki.maximum:9.2f}  {irr.maximum:8.2f}"
        )
    return "\n".join(lines)
