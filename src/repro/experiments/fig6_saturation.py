"""Figure 6: RPKI-covered address space, MANRS vs non-MANRS, 2015–2022."""

from __future__ import annotations

from repro.scenario.timeline import SaturationPoint, Timeline
from repro.scenario.world import World

__all__ = ["run", "render"]


def run(world: World) -> list[SaturationPoint]:
    """The Figure 6 series."""
    return Timeline(world).saturation_series()


def render(points: list[SaturationPoint]) -> str:
    """Tabulate the two saturation series."""
    lines = [
        "Figure 6 — RPKI saturation of routed address space",
        "year  MANRS%  non-MANRS%",
    ]
    for point in points:
        lines.append(
            f"{point.year}  {point.manrs_saturation:6.1f}  "
            f"{point.other_saturation:10.1f}"
        )
    return "\n".join(lines)
