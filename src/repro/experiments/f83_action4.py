"""Findings 8.3/8.4: AS-level conformance to MANRS Action 4."""

from __future__ import annotations

from repro.core.report import Action4Summary, build_report
from repro.manrs.actions import Program
from repro.scenario.world import World

__all__ = ["run", "render"]


def run(world: World) -> dict[Program, Action4Summary]:
    """Action 4 conformance per program (CDN needs 100%, ISP 90%)."""
    return build_report(world).action4


def render(summaries: dict[Program, Action4Summary]) -> str:
    """Summarise both programs' conformance."""
    lines = ["Findings 8.3/8.4 — Action 4 conformance"]
    for program, summary in summaries.items():
        lines.append(
            f"{program.value.upper():4}: {summary.conformant}/"
            f"{summary.total_members} conformant "
            f"({summary.pct_conformant:.0f}%), "
            f"{summary.trivially_conformant} trivially, "
            f"{len(summary.unconformant_asns)} unconformant"
        )
    return "\n".join(lines)
