"""Table 1: case studies of unconformant MANRS networks.

Reproduces the paper's six case studies — the three unconformant CDNs and
the three largest unconformant ISP organisations — attributing each
unconformant prefix-origin to Sibling/C-P or Unrelated registrations.
"""

from __future__ import annotations

from repro.core.casestudy import CaseStudyRow, attribute_unconformant
from repro.core.conformance import (
    is_action4_conformant,
    origination_stats,
)
from repro.manrs.actions import Program
from repro.scenario.world import World

__all__ = ["run", "render", "case_study_targets"]


def case_study_targets(world: World) -> list[tuple[str, tuple[int, ...]]]:
    """Pick the paper's case-study networks from a world.

    All unconformant CDN-program ASes (anonymised CDN1..), then the three
    ISP organisations owning the most unconformant member ASes (ISP1..).
    """
    stats = origination_stats(world.ihr)
    snapshot = world.snapshot_date
    targets: list[tuple[str, tuple[int, ...]]] = []

    cdn_unconformant = [
        asn
        for asn in sorted(world.manrs.member_asns(as_of=snapshot, program=Program.CDN))
        if not is_action4_conformant(stats.get(asn), Program.CDN)
    ]
    for index, asn in enumerate(cdn_unconformant[:3], start=1):
        targets.append((f"CDN{index}", (asn,)))

    unconformant_by_org: dict[str, list[int]] = {}
    unconformant_prefixes: dict[str, int] = {}
    for asn in sorted(world.manrs.member_asns(as_of=snapshot, program=Program.ISP)):
        if asn not in world.topology:
            continue
        if not is_action4_conformant(stats.get(asn), Program.ISP):
            org_id = world.topology.get_as(asn).org_id
            unconformant_by_org.setdefault(org_id, []).append(asn)
            unconformant_prefixes[org_id] = unconformant_prefixes.get(
                org_id, 0
            ) + stats[asn].unconformant
    # Rank by affirmatively-unconformant prefix-origins (the attributable
    # ones), so the case studies have substance — Table 1 rows for a
    # network whose problem is "registered nowhere" would be all zeros.
    worst_orgs = sorted(
        unconformant_by_org.items(),
        key=lambda item: (-unconformant_prefixes[item[0]], item[0]),
    )[:3]
    for index, (_, asns) in enumerate(worst_orgs, start=1):
        targets.append((f"ISP{index}", tuple(asns)))
    return targets


def run(world: World) -> list[CaseStudyRow]:
    """Build the Table 1 rows for this world's case-study networks."""
    return [
        attribute_unconformant(
            label,
            asns,
            world.ihr,
            world.rov,
            world.irr,
            world.topology,
            world.as2org,
        )
        for label, asns in case_study_targets(world)
    ]


def render(rows: list[CaseStudyRow]) -> str:
    """Tabulate Table 1."""
    lines = [
        "Table 1 — unconformant prefix-origin attribution",
        f"{'network':>8}  {'RPKI-Inv':>8}  {'Sib/C-P':>7}  {'Unrel':>5}  "
        f"{'IRR-Inv':>7}  {'Sib/C-P':>7}  {'Unrel':>5}",
    ]
    for row in rows:
        lines.append(
            f"{row.label:>8}  {row.rpki_invalid:8d}  {row.rpki_sibling_cp:7d}  "
            f"{row.rpki_unrelated:5d}  {row.irr_invalid:7d}  "
            f"{row.irr_sibling_cp:7d}  {row.irr_unrelated:5d}"
        )
    return "\n".join(lines)
