"""Shared plumbing for the per-figure experiment modules.

Every experiment consumes a built :class:`~repro.scenario.world.World`,
groups per-AS metrics into the paper's six populations (size class ×
MANRS membership), and returns printable rows/series.  ``world_cache``
memoises worlds by (scale, seed) so the benchmark suite builds each world
once and times only the analyses.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, TypeVar

from repro.core.stats import CDF, make_cdf
from repro.scenario.build import build_world
from repro.scenario.world import World
from repro.topology.classify import SizeClass

__all__ = [
    "POPULATIONS",
    "population_label",
    "group_metric",
    "world_cache",
]

T = TypeVar("T")

#: The six populations of Figures 5/7/8, in the paper's legend order.
POPULATIONS: tuple[tuple[SizeClass, bool], ...] = (
    (SizeClass.SMALL, True),
    (SizeClass.SMALL, False),
    (SizeClass.MEDIUM, True),
    (SizeClass.MEDIUM, False),
    (SizeClass.LARGE, True),
    (SizeClass.LARGE, False),
)


def population_label(size: SizeClass, member: bool) -> str:
    """The paper's legend label, e.g. ``"large non-MANRS"``."""
    return f"{size.value} {'MANRS' if member else 'non-MANRS'}"


def group_metric(
    world: World,
    per_as: dict[int, T],
    metric: Callable[[T], float],
) -> dict[tuple[SizeClass, bool], CDF]:
    """Group a per-AS statistic into per-population CDFs."""
    members = world.members()
    samples: dict[tuple[SizeClass, bool], list[float]] = {
        population: [] for population in POPULATIONS
    }
    for asn, stats in per_as.items():
        if asn not in world.topology:
            continue
        key = (world.size_of[asn], asn in members)
        samples[key].append(metric(stats))
    return {key: make_cdf(values) for key, values in samples.items()}


#: Most worlds kept alive at once.  Registry sweeps across several
#: scales would otherwise pin every world in memory for the whole run;
#: four comfortably covers the usual small/mid/full working set while
#: bounding the cache at a few GB even at full scale.
WORLD_CACHE_SIZE = 4

_WORLDS: OrderedDict[tuple[float, int], World] = OrderedDict()


def world_cache(scale: float = 1.0, seed: int = 0) -> World:
    """Build (once) and return the world for (scale, seed).

    The memo is a small LRU (:data:`WORLD_CACHE_SIZE` worlds): repeated
    lookups refresh an entry's recency, and building past the bound
    evicts the least recently used world.
    """
    key = (scale, seed)
    world = _WORLDS.get(key)
    if world is None:
        world = build_world(scale=scale, seed=seed)
        _WORLDS[key] = world
    else:
        _WORLDS.move_to_end(key)
    while len(_WORLDS) > max(1, WORLD_CACHE_SIZE):
        _WORLDS.popitem(last=False)
    return world
