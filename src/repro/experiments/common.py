"""Shared plumbing for the per-figure experiment modules.

Every experiment consumes a built :class:`~repro.scenario.world.World`,
groups per-AS metrics into the paper's six populations (size class ×
MANRS membership), and returns printable rows/series.  ``world_cache``
memoises worlds by (scale, seed) so the benchmark suite builds each world
once and times only the analyses.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, TypeVar

from repro import config as _config
from repro.core.stats import CDF, make_cdf
from repro.datasets.checkpoint import checkpoint_key, default_store
from repro.scenario.build import build_world
from repro.scenario.config import ScenarioConfig
from repro.scenario.world import World
from repro.topology.classify import SizeClass

__all__ = [
    "POPULATIONS",
    "population_label",
    "group_metric",
    "world_cache",
    "world_cache_bound",
]

T = TypeVar("T")

#: The six populations of Figures 5/7/8, in the paper's legend order.
POPULATIONS: tuple[tuple[SizeClass, bool], ...] = (
    (SizeClass.SMALL, True),
    (SizeClass.SMALL, False),
    (SizeClass.MEDIUM, True),
    (SizeClass.MEDIUM, False),
    (SizeClass.LARGE, True),
    (SizeClass.LARGE, False),
)


def population_label(size: SizeClass, member: bool) -> str:
    """The paper's legend label, e.g. ``"large non-MANRS"``."""
    return f"{size.value} {'MANRS' if member else 'non-MANRS'}"


def group_metric(
    world: World,
    per_as: dict[int, T],
    metric: Callable[[T], float],
) -> dict[tuple[SizeClass, bool], CDF]:
    """Group a per-AS statistic into per-population CDFs."""
    members = world.members()
    samples: dict[tuple[SizeClass, bool], list[float]] = {
        population: [] for population in POPULATIONS
    }
    for asn, stats in per_as.items():
        if asn not in world.topology:
            continue
        key = (world.size_of[asn], asn in members)
        samples[key].append(metric(stats))
    return {key: make_cdf(values) for key, values in samples.items()}


#: Most worlds kept alive at once.  Registry sweeps across several
#: scales would otherwise pin every world in memory for the whole run;
#: four comfortably covers the usual small/mid/full working set while
#: bounding the cache at a few GB even at full scale.  Override through
#: :class:`repro.config.RuntimeConfig` (``world_cache_size``, fed by the
#: ``REPRO_WORLD_CACHE_SIZE`` environment variable) — resolved at call
#: time, so tests and batch drivers can tune the bound without importing
#: this module first.
WORLD_CACHE_SIZE = 4

WORLD_CACHE_SIZE_ENV = "REPRO_WORLD_CACHE_SIZE"

#: Keys are ``(scale, seed)`` for the default scenario config and
#: ``(scale, seed, config_key)`` for overridden configs (sweep jobs) —
#: the short key keeps default-config entries introspectable by tests
#: and tooling that predate config-aware caching.
_WORLDS: OrderedDict[tuple, World] = OrderedDict()


def world_cache_bound() -> int:
    """The in-memory LRU bound from the active runtime config.

    Resolved through :func:`repro.config.current` (falling back to
    ``REPRO_WORLD_CACHE_SIZE``, else :data:`WORLD_CACHE_SIZE` — the
    module constant stays the patchable default for tests and batch
    drivers).  Unparseable or non-positive overrides fall back to the
    default — a misconfigured environment should never break an
    analysis run.
    """
    size = _config.current().world_cache_size
    if size == _config.RuntimeConfig.world_cache_size:
        # Nothing specified it: defer to the (patchable) module default.
        size = WORLD_CACHE_SIZE
    return max(1, size)


def world_cache(
    scale: float = 1.0,
    seed: int = 0,
    config: ScenarioConfig | None = None,
    runtime: "_config.RuntimeConfig | None" = None,
) -> World:
    """Build (once) and return the world for (scale, seed[, config]).

    Two-tier: a small in-memory LRU (:func:`world_cache_bound` worlds,
    default :data:`WORLD_CACHE_SIZE`) in front of the on-disk checkpoint
    store named by the runtime config's ``cache_dir`` (fallback
    ``REPRO_CACHE_DIR``; unset disables it).  A memory miss tries the
    disk store before building cold, and a cold build is saved back so
    the *next process* warm-starts too.  Disk entries that fail
    verification are discarded by the store and rebuilt here — callers
    never see a corrupt world.

    ``config`` selects a scenario override (sweep jobs build variant
    worlds); ``None`` means the default :class:`ScenarioConfig`, cached
    under the historical ``(scale, seed)`` key.  ``runtime`` installs a
    :class:`repro.config.RuntimeConfig` for the duration of the call
    (store location, LRU bound, and every build knob underneath).
    """
    with _config.use(runtime):
        if config is None:
            key: tuple = (scale, seed)
        else:
            key = (scale, seed, checkpoint_key(config, scale, seed))
        world = _WORLDS.get(key)
        if world is None:
            store = default_store()
            if store is not None:
                world = store.load(config or ScenarioConfig(), scale, seed)
            if world is None:
                # config is passed through only when overridden, so test
                # doubles with the historical (scale, seed) signature and
                # the default-config build path stay byte-compatible.
                if config is None:
                    world = build_world(scale=scale, seed=seed)
                else:
                    world = build_world(scale=scale, seed=seed, config=config)
                if store is not None:
                    store.save(world)
            _WORLDS[key] = world
        else:
            _WORLDS.move_to_end(key)
        while len(_WORLDS) > world_cache_bound():
            _WORLDS.popitem(last=False)
        return world
