"""Finding 7.0: organisation-level MANRS registration completeness."""

from __future__ import annotations

from repro.core.participation import CompletenessReport, registration_completeness
from repro.scenario.world import World

__all__ = ["run", "render"]


def run(world: World) -> CompletenessReport:
    """Compute Finding 7.0 at the world's snapshot date."""
    return registration_completeness(
        world.topology, world.manrs, world.prefix2as, world.snapshot_date
    )


def render(report: CompletenessReport) -> str:
    """Summarise the completeness statistics."""
    return "\n".join(
        [
            "Finding 7.0 — registration completeness",
            f"member organisations:                      {report.total_orgs}",
            f"registered all their ASNs:                 "
            f"{report.all_asns_registered} ({report.pct_all_asns:.0f}%)",
            f"announce space only via registered ASNs:   "
            f"{report.all_space_via_registered} ({report.pct_all_space:.0f}%)",
            f"announce some space from unregistered ASNs: {report.partial_announcers}",
            f"announce only from unregistered ASNs:      "
            f"{report.only_unregistered_announcers}",
            f"unregistered ASNs all quiescent:           "
            f"{report.quiescent_unregistered_only}",
        ]
    )
