"""Experiments: one module per paper table/figure (see DESIGN.md §4)."""

from repro.experiments import (
    ablations,
    counterfactual,
    ext_other_actions,
    f70_completeness,
    f83_action4,
    f87_stability,
    fig2_growth,
    fig4_participation,
    fig5_origination,
    fig6_saturation,
    fig7_filtering,
    fig8_unconformant,
    fig9_preference,
    tab1_casestudies,
    tab2_action1,
)
from repro.experiments.common import (
    POPULATIONS,
    group_metric,
    population_label,
    world_cache,
)
from repro.experiments.registry import REGISTRY, ExperimentSpec, select

__all__ = [
    "POPULATIONS",
    "REGISTRY",
    "ExperimentSpec",
    "select",
    "ablations",
    "counterfactual",
    "ext_other_actions",
    "f70_completeness",
    "f83_action4",
    "f87_stability",
    "fig2_growth",
    "fig4_participation",
    "fig5_origination",
    "fig6_saturation",
    "fig7_filtering",
    "fig8_unconformant",
    "fig9_preference",
    "group_metric",
    "population_label",
    "tab1_casestudies",
    "tab2_action1",
    "world_cache",
]
