"""Figure 4: MANRS participation by RIR region over time.

4a — member AS counts per RIR (the LACNIC/Brazil outreach wave);
4b — percent of routed IPv4 address space announced by member ASes per
RIR (the APNIC flagship-transit and ARIN CDN-program jumps).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.registry.rir import RIR
from repro.scenario.timeline import Timeline
from repro.scenario.world import World

__all__ = ["Fig4Result", "run", "render"]


@dataclass(frozen=True)
class Fig4Result:
    """Both panels of Figure 4."""

    ases_by_rir: dict[RIR, list[tuple[int, int]]]
    space_share_by_rir: dict[RIR, list[tuple[int, float]]]

    def ases_in(self, rir: RIR, year: int) -> int:
        """Member AS count for one (RIR, year)."""
        return dict(self.ases_by_rir[rir])[year]

    def share_in(self, rir: RIR, year: int) -> float:
        """Member routed-space share (percent) for one (RIR, year)."""
        return dict(self.space_share_by_rir[rir])[year]


def run(world: World) -> Fig4Result:
    """Compute both Figure 4 panels."""
    timeline = Timeline(world)
    return Fig4Result(
        ases_by_rir=timeline.members_by_rir_series(),
        space_share_by_rir=timeline.routed_share_series(),
    )


def render(result: Fig4Result) -> str:
    """Tabulate both panels year × RIR."""
    years = [year for year, _ in next(iter(result.ases_by_rir.values()))]
    lines = ["Figure 4a — MANRS ASes per RIR"]
    header = "year  " + "  ".join(f"{rir.value:>7}" for rir in RIR)
    lines.append(header)
    for i, year in enumerate(years):
        row = f"{year}  " + "  ".join(
            f"{result.ases_by_rir[rir][i][1]:7d}" for rir in RIR
        )
        lines.append(row)
    lines.append("")
    lines.append("Figure 4b — % routed IPv4 space announced by MANRS ASes")
    lines.append(header)
    for i, year in enumerate(years):
        row = f"{year}  " + "  ".join(
            f"{result.space_share_by_rir[rir][i][1]:7.2f}" for rir in RIR
        )
        lines.append(row)
    return "\n".join(lines)
