"""Figure 2: growth of MANRS organisations and ASes, 2015–2022."""

from __future__ import annotations

from repro.scenario.timeline import GrowthPoint, Timeline
from repro.scenario.world import World

__all__ = ["run", "render"]


def run(world: World) -> list[GrowthPoint]:
    """The Figure 2 series: (year, member orgs, member ASes)."""
    return Timeline(world).growth()


def render(points: list[GrowthPoint]) -> str:
    """Print the series as the paper's figure would tabulate it."""
    lines = ["Figure 2 — MANRS growth", "year  organisations  ASes"]
    for point in points:
        lines.append(
            f"{point.year}  {point.organizations:13d}  {point.asns:4d}"
        )
    return "\n".join(lines)
