"""Figure 5: prefix-origination validity CDFs (Action 4 behaviour).

5a — CDF of the percent of RPKI-Valid prefixes each AS originates, per
population; 5b — the same for IRR-Valid.  The module also computes the
§8.1/§8.2 side statistics: the bimodal mode shares (all-valid /
no-valid), RPKI-Invalid originators, and IRR-only registration.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.conformance import OriginationStats, origination_stats
from repro.core.stats import CDF
from repro.experiments.common import POPULATIONS, group_metric, population_label
from repro.scenario.world import World
from repro.topology.classify import SizeClass

__all__ = ["Fig5Result", "run", "render"]

Population = tuple[SizeClass, bool]


@dataclass(frozen=True)
class PopulationModes:
    """§8.1/§8.2 per-population mode shares."""

    n_ases: int
    only_rpki_valid: float     # fraction of ASes with 100% RPKI Valid
    no_rpki_valid: float       # fraction with 0% RPKI Valid
    originates_rpki_invalid: float
    only_irr_valid: float
    irr_only_registration: float


@dataclass(frozen=True)
class Fig5Result:
    """Both Figure 5 panels plus the mode statistics."""

    rpki_cdf: dict[Population, CDF]
    irr_cdf: dict[Population, CDF]
    modes: dict[Population, PopulationModes]


def run(world: World) -> Fig5Result:
    """Compute Figure 5 for one world."""
    stats = origination_stats(world.ihr)
    rpki_cdf = group_metric(world, stats, lambda s: s.og_rpki_valid)
    irr_cdf = group_metric(world, stats, lambda s: s.og_irr_valid)
    members = world.members()
    grouped: dict[Population, list[OriginationStats]] = {
        population: [] for population in POPULATIONS
    }
    for asn, as_stats in stats.items():
        if asn not in world.topology:
            continue
        grouped[(world.size_of[asn], asn in members)].append(as_stats)
    modes: dict[Population, PopulationModes] = {}
    for population, stats_list in grouped.items():
        n = len(stats_list)
        if n == 0:
            modes[population] = PopulationModes(0, 0.0, 0.0, 0.0, 0.0, 0.0)
            continue
        modes[population] = PopulationModes(
            n_ases=n,
            only_rpki_valid=sum(s.only_rpki_valid for s in stats_list) / n,
            no_rpki_valid=sum(s.no_rpki_valid for s in stats_list) / n,
            originates_rpki_invalid=sum(
                s.rpki_invalid > 0 for s in stats_list
            )
            / n,
            only_irr_valid=sum(
                s.irr_valid == s.total for s in stats_list
            )
            / n,
            irr_only_registration=sum(
                s.irr_only_registration for s in stats_list
            )
            / n,
        )
    return Fig5Result(rpki_cdf=rpki_cdf, irr_cdf=irr_cdf, modes=modes)


def render(result: Fig5Result) -> str:
    """Tabulate medians and mode shares per population."""
    lines = [
        "Figure 5 — originated prefix validity by population",
        f"{'population':>20}  {'n':>5}  {'med %RPKI':>9}  {'med %IRR':>8}  "
        f"{'all-RPKI':>8}  {'no-RPKI':>7}  {'IRR-only':>8}",
    ]
    for population in POPULATIONS:
        size, member = population
        cdf = result.rpki_cdf[population]
        irr = result.irr_cdf[population]
        mode = result.modes[population]
        if cdf.n == 0:
            continue
        lines.append(
            f"{population_label(size, member):>20}  {cdf.n:5d}  "
            f"{cdf.median:9.1f}  {irr.median:8.1f}  "
            f"{100 * mode.only_rpki_valid:7.1f}%  "
            f"{100 * mode.no_rpki_valid:6.1f}%  "
            f"{100 * mode.irr_only_registration:7.1f}%"
        )
    return "\n".join(lines)
