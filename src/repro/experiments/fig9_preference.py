"""Figure 9: MANRS preference score distribution by RPKI status.

The preference score (Equation 9) of a prefix-origin is the sum of
hegemony scores of its MANRS transit ASes minus that of its non-MANRS
transit ASes; positive means the announcement is more likely to cross
MANRS networks.  If MANRS networks collectively filter better, RPKI
Invalid announcements should skew negative relative to Valid/NotFound —
the paper's headline impact result (Finding 9.4).
"""

from __future__ import annotations

from repro.core.impact import preference_scores
from repro.core.stats import CDF, make_cdf
from repro.scenario.world import World

__all__ = ["run", "render"]


def run(world: World) -> dict[str, CDF]:
    """Preference-score CDFs keyed by RPKI status group."""
    scores = preference_scores(world.ihr, world.members())
    return {status: make_cdf(values) for status, values in scores.items()}


def render(cdfs: dict[str, CDF]) -> str:
    """Summarise: fraction of prefix-origins preferring MANRS transit."""
    lines = [
        "Figure 9 — MANRS preference score by RPKI status",
        f"{'status':>10}  {'n':>7}  {'% preferring MANRS':>18}  {'median':>7}",
    ]
    for status in ("valid", "not_found", "invalid"):
        cdf = cdfs[status]
        if cdf.n == 0:
            continue
        lines.append(
            f"{status:>10}  {cdf.n:7d}  "
            f"{100 * cdf.fraction_above(0.0):17.1f}%  {cdf.median:7.3f}"
        )
    return "\n".join(lines)
