"""Figure 8: MANRS-unconformant *customer* prefixes propagated per AS."""

from __future__ import annotations

from repro.core.conformance import propagation_stats
from repro.core.stats import CDF
from repro.experiments.common import POPULATIONS, group_metric, population_label
from repro.scenario.world import World
from repro.topology.classify import SizeClass

__all__ = ["run", "render"]

Population = tuple[SizeClass, bool]


def run(world: World) -> dict[Population, CDF]:
    """CDF of Formula 6 (PG_unconformant) per population.

    Only ASes that actually provide transit to customer announcements
    appear (the reason Figure 8's legend counts are smaller than
    Figure 7's).
    """
    stats = {
        asn: s
        for asn, s in propagation_stats(world.ihr).items()
        if s.customer_total > 0
    }
    return group_metric(world, stats, lambda s: s.pg_unconformant)


def render(cdfs: dict[Population, CDF]) -> str:
    """Tabulate per-population unconformant-propagation stats."""
    lines = [
        "Figure 8 — unconformant customer prefixes propagated",
        f"{'population':>20}  {'n':>5}  {'median %':>8}  {'max %':>6}",
    ]
    for population in POPULATIONS:
        size, member = population
        cdf = cdfs[population]
        if cdf.n == 0:
            continue
        lines.append(
            f"{population_label(size, member):>20}  {cdf.n:5d}  "
            f"{cdf.median:8.2f}  {cdf.maximum:6.2f}"
        )
    return "\n".join(lines)
