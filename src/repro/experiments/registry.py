"""The experiment registry: one uniform API over every paper artefact.

Each figure/table/finding module exposes ``run(world) -> result`` and
``render(result) -> str``; the registry wraps them in
:class:`ExperimentSpec` records keyed by a short stable name (``fig5``,
``tab2``, ``f87``…), ordered as the paper presents them — the same order
``reproduce`` has always printed.  Tooling (the CLI, the benchmark
runner, a future server) iterates :data:`REGISTRY` instead of hardcoding
module lists, and ``reproduce --only fig5,tab2`` filters by name via
:func:`select`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Any, Callable, Iterable, Mapping

import repro.experiments.f70_completeness as f70_completeness
import repro.experiments.f83_action4 as f83_action4
import repro.experiments.f87_stability as f87_stability
import repro.experiments.fig2_growth as fig2_growth
import repro.experiments.fig4_participation as fig4_participation
import repro.experiments.fig5_origination as fig5_origination
import repro.experiments.fig6_saturation as fig6_saturation
import repro.experiments.fig7_filtering as fig7_filtering
import repro.experiments.fig8_unconformant as fig8_unconformant
import repro.experiments.fig9_preference as fig9_preference
import repro.experiments.tab1_casestudies as tab1_casestudies
import repro.experiments.tab2_action1 as tab2_action1
from repro.scenario.world import World
from repro.scenarios import FAMILIES as _SCENARIO_FAMILIES

__all__ = ["REGISTRY", "ExperimentSpec", "registry_table", "select"]


@dataclass(frozen=True)
class ExperimentSpec:
    """One paper artefact behind the uniform run/render API."""

    #: Short stable identifier (CLI filter key, benchmark label).
    name: str
    #: Human title, e.g. ``"Figure 5 — origination conformance"``.
    title: str
    #: Where the artefact lives in the paper, e.g. ``"§8, Figure 5"``.
    paper_ref: str
    #: Compute the artefact's data from a built world.
    run: Callable[[World], Any] = field(repr=False)
    #: Format a ``run`` result as printable text.
    render: Callable[[Any], str] = field(repr=False)


def _ordered_specs() -> tuple[ExperimentSpec, ...]:
    return (
        ExperimentSpec(
            "fig2",
            "Figure 2 — MANRS growth",
            "§7, Figure 2",
            fig2_growth.run,
            fig2_growth.render,
        ),
        ExperimentSpec(
            "fig4",
            "Figure 4 — participation by RIR",
            "§7, Figure 4",
            fig4_participation.run,
            fig4_participation.render,
        ),
        ExperimentSpec(
            "f70",
            "Finding 7.0 — registration completeness",
            "§7, Finding 7.0",
            f70_completeness.run,
            f70_completeness.render,
        ),
        ExperimentSpec(
            "fig5",
            "Figure 5 — origination conformance",
            "§8, Figure 5",
            fig5_origination.run,
            fig5_origination.render,
        ),
        ExperimentSpec(
            "f83",
            "Findings 8.3/8.4 — Action 4 conformance",
            "§8, Findings 8.3/8.4",
            f83_action4.run,
            f83_action4.render,
        ),
        ExperimentSpec(
            "tab1",
            "Table 1 — case studies",
            "§8, Table 1",
            tab1_casestudies.run,
            tab1_casestudies.render,
        ),
        ExperimentSpec(
            "f87",
            "Finding 8.7 — conformance stability",
            "§8.5, Finding 8.7",
            f87_stability.run,
            f87_stability.render,
        ),
        ExperimentSpec(
            "fig6",
            "Figure 6 — RPKI saturation",
            "§8.6, Figure 6",
            fig6_saturation.run,
            fig6_saturation.render,
        ),
        ExperimentSpec(
            "fig7",
            "Figure 7 — route filtering",
            "§9, Figure 7",
            fig7_filtering.run,
            fig7_filtering.render,
        ),
        ExperimentSpec(
            "fig8",
            "Figure 8 — unconformant propagation",
            "§9, Figure 8",
            fig8_unconformant.run,
            fig8_unconformant.render,
        ),
        ExperimentSpec(
            "tab2",
            "Table 2 — Action 1 conformance",
            "§9, Table 2",
            tab2_action1.run,
            tab2_action1.render,
        ),
        ExperimentSpec(
            "fig9",
            "Figure 9 — MANRS transit preference",
            "§9, Figure 9",
            fig9_preference.run,
            fig9_preference.render,
        ),
        # The scenario pack (repro.scenarios, DESIGN.md §17) rides the
        # same registry: families appear after the paper artefacts, in
        # the pack's own order.
        *(
            ExperimentSpec(
                family.name,
                family.title,
                family.paper_ref,
                family.run,
                family.render,
            )
            for family in _SCENARIO_FAMILIES.values()
        ),
    )


#: Every paper artefact, in presentation order, keyed by stable name.
REGISTRY: Mapping[str, ExperimentSpec] = MappingProxyType(
    {spec.name: spec for spec in _ordered_specs()}
)


def select(names: Iterable[str] | str | None = None) -> list[ExperimentSpec]:
    """Resolve experiment names to specs, preserving registry order.

    ``names`` may be an iterable of names or one comma-separated string;
    ``None`` (or empty) selects everything.  Unknown names raise
    ``KeyError`` listing the valid choices, and the result follows the
    registry's paper order regardless of the order names were given in.
    """
    if names is None:
        return list(REGISTRY.values())
    if isinstance(names, str):
        names = [part.strip() for part in names.split(",") if part.strip()]
    wanted = set(names)
    if not wanted:
        return list(REGISTRY.values())
    unknown = wanted - REGISTRY.keys()
    if unknown:
        raise KeyError(
            f"unknown experiment(s) {sorted(unknown)}; "
            f"choose from {list(REGISTRY)}"
        )
    return [spec for name, spec in REGISTRY.items() if name in wanted]


def registry_table() -> str:
    """The registry as an aligned text table (name, title, paper ref).

    What ``repro reproduce --list`` and ``repro sweep list`` print, so a
    user can discover valid ``--only`` / sweep ``experiments`` names
    without reading source.
    """
    rows = [
        (spec.name, spec.title, spec.paper_ref)
        for spec in REGISTRY.values()
    ]
    widths = [
        max(len(row[column]) for row in (("name", "title", "paper ref"), *rows))
        for column in range(3)
    ]
    lines = []
    for name, title, ref in (("name", "title", "paper ref"), *rows):
        lines.append(
            f"{name:<{widths[0]}}  {title:<{widths[1]}}  {ref:<{widths[2]}}".rstrip()
        )
    lines.insert(1, "  ".join("-" * width for width in widths))
    return "\n".join(lines)
