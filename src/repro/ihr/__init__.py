"""Internet Health Report substitute: prefix-origin and transit datasets."""

from repro.ihr.pipeline import build_ihr_dataset
from repro.ihr.serialize import parse_ihr, serialize_ihr
from repro.ihr.records import (
    IHRDataset,
    PrefixOriginRecord,
    TransitGroup,
    TransitInfo,
    TransitRecord,
)

__all__ = [
    "IHRDataset",
    "PrefixOriginRecord",
    "TransitGroup",
    "TransitInfo",
    "TransitRecord",
    "build_ihr_dataset",
    "parse_ihr",
    "serialize_ihr",
]
