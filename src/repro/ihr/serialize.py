"""IHR dataset serialisation (CSV, modelled on the IHR ROV API).

The IHR exposes its ROV module as rows of prefix, origin AS, statuses,
transit AS and hegemony (§5.3).  Serialising our datasets in the same
tabular spirit lets users archive snapshots and diff them across runs —
and lets the analyses run from files.
"""

from __future__ import annotations

from repro.errors import DatasetError
from repro.ihr.records import (
    IHRDataset,
    PrefixOriginRecord,
    TransitGroup,
    TransitInfo,
)
from repro.irr.validation import IRRStatus
from repro.net.prefix import Prefix
from repro.rpki.rov import RPKIStatus

__all__ = ["serialize_ihr", "parse_ihr"]

_PO_HEADER = "prefix,origin,rpki,irr,visibility"
_TR_HEADER = "prefix,origin,rpki,irr,transit,hegemony,from_customer"
_PO_SECTION = "# prefix-origin dataset"
_TR_SECTION = "# transit dataset"


def serialize_ihr(dataset: IHRDataset) -> str:
    """Render both IHR tables into one two-section CSV document."""
    lines = [_PO_SECTION, _PO_HEADER]
    for record in dataset.prefix_origins:
        lines.append(
            f"{record.prefix},{record.origin},{record.rpki.value},"
            f"{record.irr.value},{record.visibility}"
        )
    lines.append(_TR_SECTION)
    lines.append(_TR_HEADER)
    for row in dataset.iter_transits():
        lines.append(
            f"{row.prefix},{row.origin},{row.rpki.value},{row.irr.value},"
            f"{row.transit},{row.hegemony:.6f},{int(row.from_customer)}"
        )
    return "\n".join(lines) + "\n"


def parse_ihr(text: str) -> IHRDataset:
    """Parse the document produced by :func:`serialize_ihr`.

    Transit rows are regrouped by (origin, prefix set, statuses) so the
    reconstructed dataset walks like the original; per-group visibility is
    not stored in the transit section and is restored from the
    prefix-origin records.
    """
    prefix_origins: list[PrefixOriginRecord] = []
    transit_rows: list[tuple[Prefix, int, RPKIStatus, IRRStatus, int, float, bool]] = []
    section = None
    for line_number, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        if line == _PO_SECTION:
            section = "po"
            continue
        if line == _TR_SECTION:
            section = "tr"
            continue
        if line in (_PO_HEADER, _TR_HEADER):
            continue
        fields = line.split(",")
        try:
            if section == "po":
                if len(fields) != 5:
                    raise ValueError("field count")
                prefix_origins.append(
                    PrefixOriginRecord(
                        prefix=Prefix.parse(fields[0]),
                        origin=int(fields[1]),
                        rpki=RPKIStatus(fields[2]),
                        irr=IRRStatus(fields[3]),
                        visibility=int(fields[4]),
                    )
                )
            elif section == "tr":
                if len(fields) != 7:
                    raise ValueError("field count")
                transit_rows.append(
                    (
                        Prefix.parse(fields[0]),
                        int(fields[1]),
                        RPKIStatus(fields[2]),
                        IRRStatus(fields[3]),
                        int(fields[4]),
                        float(fields[5]),
                        bool(int(fields[6])),
                    )
                )
            else:
                raise ValueError("row before section header")
        except ValueError as exc:
            raise DatasetError(
                f"bad IHR record at line {line_number}: {line!r}"
            ) from exc

    visibility_of = {
        (record.prefix, record.origin): record.visibility
        for record in prefix_origins
    }
    # Group transit rows back into per-(origin, transit-set) groups: rows
    # of one original group share identical transit maps per prefix.
    per_announcement: dict[
        tuple[int, Prefix],
        tuple[tuple[RPKIStatus, IRRStatus], dict[int, TransitInfo]],
    ] = {}
    for prefix, origin, rpki, irr, transit, hegemony, from_customer in transit_rows:
        key = (origin, prefix)
        if key not in per_announcement:
            per_announcement[key] = ((rpki, irr), {})
        per_announcement[key][1][transit] = TransitInfo(
            hegemony=hegemony, from_customer=from_customer
        )
    by_signature: dict[
        tuple[int, tuple[tuple[int, TransitInfo], ...]],
        list[tuple[Prefix, tuple[RPKIStatus, IRRStatus]]],
    ] = {}
    for (origin, prefix), (statuses, transits) in per_announcement.items():
        signature = (origin, tuple(sorted(transits.items())))
        by_signature.setdefault(signature, []).append((prefix, statuses))
    groups = []
    for (origin, transit_items), members in sorted(
        by_signature.items(), key=lambda item: (item[0][0], item[1][0][0])
    ):
        members.sort(key=lambda m: m[0])
        prefixes = tuple(prefix for prefix, _ in members)
        statuses = tuple(status for _, status in members)
        groups.append(
            TransitGroup(
                origin=origin,
                prefixes=prefixes,
                statuses=statuses,
                transits=dict(transit_items),
                visibility=visibility_of.get((prefixes[0], origin), 0),
            )
        )
    return IHRDataset(prefix_origins=prefix_origins, transit_groups=groups)
