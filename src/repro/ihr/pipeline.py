"""The IHR pipeline: collector RIBs + registries → analysis datasets.

This reimplements the derivation the Internet Health Report performs
(§5.3): classify every routed (prefix, origin) against the RPKI (RFC 6811)
and the IRR, compute AS-Hegemony scores for the transit ASes on paths
toward it, and emit the prefix-origin and transit datasets the paper's
conformance and impact analyses consume.

The construction batches its lookups: all (prefix, origin) pairs are
classified up front through the bulk/memoised validator paths (one radix
walk per distinct prefix instead of one per record), and each group's
vantage-point paths are prepending-stripped once and shared between the
hegemony and learned-from-customer computations.
"""

from __future__ import annotations

import logging
from itertools import chain

import numpy as np

from repro import config as _config
from repro import kernels, obs
from repro.bgp.collector import RibSnapshot, RouteGroup
from repro.config import RuntimeConfig
from repro.hegemony.scores import DEFAULT_TRIM, hegemony_scores
from repro.kernels.groupby import hegemony_transits
from repro.ihr.records import (
    IHRDataset,
    PrefixOriginRecord,
    TransitGroup,
    TransitInfo,
)
from repro.irr.database import IRRCollection, IRRDatabase
from repro.irr.validation import validate_irr_many
from repro.net.asn import strip_prepending
from repro.rpki.rov import ROVValidator
from repro.shard import (
    check_shard_manifests,
    pool_map_consume,
    resolve_build_budget,
    resolve_shards,
    shard_manifest,
    split_evenly,
)
from repro.topology.model import ASTopology

__all__ = ["build_ihr_dataset", "transit_groups_indexed"]

log = logging.getLogger(__name__)

#: Below this many visible route groups the per-pool topology pickling
#: cannot pay for itself; transit scoring stays in-process.
MIN_SHARD_GROUPS = 64

#: Flat-path working-set bound (bytes) for one in-process hegemony
#: partition when no ``REPRO_BUILD_BUDGET_MB`` is configured.  Per-group
#: scores depend only on that group's paths, so partitioning the flat
#: reduction is an identity transform — it just caps how much of the
#: RIB's path table is ever flattened into int64 columns at once.
DEFAULT_HEGEMONY_PARTITION_BYTES = 64 * 1024 * 1024


def build_ihr_dataset(
    snapshot: RibSnapshot,
    rov: ROVValidator,
    irr: IRRCollection | IRRDatabase,
    topology: ASTopology,
    trim: float = DEFAULT_TRIM,
    shards: int | None = None,
    jobs: int | None = None,
    runtime: RuntimeConfig | None = None,
) -> IHRDataset:
    """Build both IHR tables from one collector snapshot.

    Vantage-point paths are identical for every prefix in a
    :class:`~repro.bgp.collector.RouteGroup`, so hegemony and the
    learned-from-customer flags are computed once per group.

    ``shards`` (default: the runtime config / ``REPRO_SHARDS``, else 1)
    fans both the bulk route validation (by prefix range) and the
    transit scoring (by route-group chunk) across a process pool;
    per-route verdicts and per-group hegemony are independent, so the
    sharded dataset is identical.  ``runtime`` installs a
    :class:`repro.config.RuntimeConfig` for the duration of the call.
    """
    if runtime is not None:
        with _config.use(runtime):
            return build_ihr_dataset(
                snapshot, rov, irr, topology, trim=trim, shards=shards, jobs=jobs
            )
    prefix_origins: list[PrefixOriginRecord] = []
    visible = [group for group in snapshot.groups if group.paths]
    shards = resolve_shards(shards)
    with obs.span("ihr.validate"):
        routes = [
            (prefix, group.origin)
            for group in visible
            for prefix in group.prefixes
        ]
        rpki_by_route = rov.validate_many(routes, shards=shards, jobs=jobs)
        irr_by_route = validate_irr_many(irr, routes, shards=shards, jobs=jobs)
    with obs.span("ihr.hegemony"):
        group_statuses: list[tuple] = []
        for group in visible:
            statuses = tuple(
                (
                    rpki_by_route[(prefix, group.origin)],
                    irr_by_route[(prefix, group.origin)],
                )
                for prefix in group.prefixes
            )
            group_statuses.append(statuses)
            visibility = len(group.paths)
            for prefix, (rpki_status, irr_status) in zip(
                group.prefixes, statuses
            ):
                prefix_origins.append(
                    PrefixOriginRecord(
                        prefix=prefix,
                        origin=group.origin,
                        rpki=rpki_status,
                        irr=irr_status,
                        visibility=visibility,
                    )
                )
        transit_groups = None
        if shards > 1 and len(visible) >= MIN_SHARD_GROUPS:
            transit_groups = _sharded_transit_groups(
                visible, group_statuses, topology, trim, shards, jobs
            )
        if transit_groups is None:
            if kernels.use_numpy():
                transit_groups = _transit_groups_numpy(
                    visible, group_statuses, topology, trim
                )
            else:
                transit_groups = _transit_groups_python(
                    visible, group_statuses, topology, trim
                )
    obs.add("ihr.prefix_origins", len(prefix_origins))
    obs.add("ihr.transit_groups", len(transit_groups))
    return IHRDataset(prefix_origins=prefix_origins, transit_groups=transit_groups)


def _transit_groups_python(
    visible: list[RouteGroup],
    group_statuses: list[tuple],
    topology: ASTopology,
    trim: float,
) -> list[TransitGroup]:
    """The reference per-group transit scoring loop."""
    # Materialise customer sets once: ASTopology.customers_of copies a
    # frozenset per call, far too slow for millions of path positions.
    customers_of = {asn: topology.customers_of(asn) for asn in topology.asns}
    transit_groups: list[TransitGroup] = []
    for group, statuses in zip(visible, group_statuses):
        stripped = [strip_prepending(path) for path in group.paths.values()]
        scores = hegemony_scores(stripped, trim=trim, prestripped=True)
        if not scores:
            continue
        learned_from_customer = _customer_learning(stripped, customers_of)
        transits = {
            asn: TransitInfo(
                hegemony=score,
                from_customer=learned_from_customer.get(asn, False),
            )
            for asn, score in scores.items()
        }
        transit_groups.append(
            TransitGroup(
                origin=group.origin,
                prefixes=group.prefixes,
                statuses=statuses,
                transits=transits,
                visibility=len(group.paths),
            )
        )
    return transit_groups


def transit_groups_indexed(
    visible: list[RouteGroup],
    group_statuses: list[tuple],
    topology: ASTopology,
    trim: float = DEFAULT_TRIM,
) -> list[tuple[int, TransitGroup]]:
    """``(index, TransitGroup)`` pairs for groups with transit scores.

    Per-group outputs are identical to the batch builders above, but each
    surviving group is tagged with its index into ``visible`` so an
    incremental caller (:mod:`repro.delta`) can score a sparse subset of
    groups and splice the results between cached ones.  Kernel-mode
    dispatch matches :func:`build_ihr_dataset`.
    """
    if not visible:
        return []
    if kernels.use_numpy():
        columns = _hegemony_columns(visible, topology, trim)
        groups = _groups_from_columns(visible, group_statuses, columns)
        group_ids = columns[0]
        if not len(group_ids):
            return []
        bounds = np.flatnonzero(
            np.concatenate(([True], group_ids[1:] != group_ids[:-1]))
        )
        return list(zip(group_ids[bounds].tolist(), groups))
    customers_of = {asn: topology.customers_of(asn) for asn in topology.asns}
    pairs: list[tuple[int, TransitGroup]] = []
    for index, (group, statuses) in enumerate(zip(visible, group_statuses)):
        stripped = [strip_prepending(path) for path in group.paths.values()]
        scores = hegemony_scores(stripped, trim=trim, prestripped=True)
        if not scores:
            continue
        learned_from_customer = _customer_learning(stripped, customers_of)
        transits = {
            asn: TransitInfo(
                hegemony=score,
                from_customer=learned_from_customer.get(asn, False),
            )
            for asn, score in scores.items()
        }
        pairs.append(
            (
                index,
                TransitGroup(
                    origin=group.origin,
                    prefixes=group.prefixes,
                    statuses=statuses,
                    transits=transits,
                    visibility=len(group.paths),
                ),
            )
        )
    return pairs


def _hegemony_columns(
    visible: list[RouteGroup], topology: ASTopology, trim: float
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """The flat hegemony reduction as columns (group id, ASN, score, flag).

    Rows come out grouped by ascending group index; each group's rows
    depend only on that group's paths, which is what makes group-chunk
    sharding an identity transform.
    """
    all_paths: list[tuple[int, ...]] = []
    counts: list[int] = []
    for group in visible:
        paths = group.paths
        all_paths.extend(paths.values())
        counts.append(len(paths))
    lens = np.fromiter(map(len, all_paths), dtype=np.int64, count=len(all_paths))
    offsets = np.concatenate((np.zeros(1, dtype=np.int64), np.cumsum(lens)))
    flat = np.fromiter(
        chain.from_iterable(all_paths), dtype=np.int64, count=int(offsets[-1])
    )
    paths_per_group = np.array(counts, dtype=np.int64)
    group_of_path = np.repeat(
        np.arange(len(visible), dtype=np.int64), paths_per_group
    )
    edges = topology.csr().customer_edge_keys()
    return hegemony_transits(
        flat,
        offsets,
        group_of_path,
        paths_per_group,
        trim,
        edges,
    )


def _groups_from_columns(
    visible: list[RouteGroup],
    group_statuses: list[tuple],
    columns: tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray],
) -> list[TransitGroup]:
    """Materialise TransitGroups from hegemony columns."""
    group_ids, asns, scores, flags = columns
    transit_groups: list[TransitGroup] = []
    if not len(group_ids):
        return transit_groups
    bounds = np.flatnonzero(
        np.concatenate(([True], group_ids[1:] != group_ids[:-1]))
    )
    ends = np.concatenate((bounds[1:], [len(group_ids)]))
    gi_list = group_ids.tolist()
    asn_list = asns.tolist()
    score_list = scores.tolist()
    flag_list = flags.tolist()
    for begin, end in zip(bounds.tolist(), ends.tolist()):
        group = visible[gi_list[begin]]
        transits = {
            asn_list[row]: TransitInfo(
                hegemony=score_list[row],
                from_customer=flag_list[row],
            )
            for row in range(begin, end)
        }
        transit_groups.append(
            TransitGroup(
                origin=group.origin,
                prefixes=group.prefixes,
                statuses=group_statuses[gi_list[begin]],
                transits=transits,
                visibility=len(group.paths),
            )
        )
    return transit_groups


def _partition_groups(
    visible: list[RouteGroup], budget_bytes: int
) -> list[list[RouteGroup]]:
    """Contiguous partitions of ``visible`` bounded by flat-path bytes.

    A group whose paths alone exceed the budget gets a partition of its
    own — partitions are never empty and their concatenation is
    ``visible``, so the streamed reduction visits every group exactly
    once in the serial order.
    """
    partitions: list[list[RouteGroup]] = []
    current: list[RouteGroup] = []
    current_bytes = 0
    for group in visible:
        group_bytes = 8 * sum(len(path) for path in group.paths.values())
        if current and current_bytes + group_bytes > budget_bytes:
            partitions.append(current)
            current = []
            current_bytes = 0
        current.append(group)
        current_bytes += group_bytes
    if current:
        partitions.append(current)
    return partitions


def _transit_groups_numpy(
    visible: list[RouteGroup],
    group_statuses: list[tuple],
    topology: ASTopology,
    trim: float,
) -> list[TransitGroup]:
    """Columnar transit scoring, streamed over route-group partitions.

    Produces the same TransitGroups in the same order with the same
    per-group transit insertion order as the reference loop (see
    :func:`repro.kernels.groupby.hegemony_transits`).  The flat
    reduction runs one bounded partition at a time: each group's rows
    depend only on its own paths and partitions are contiguous slices,
    so per-partition columns materialise exactly the groups the global
    reduction would — with the flattened int64 working set capped at
    ``REPRO_BUILD_BUDGET_MB`` (default
    :data:`DEFAULT_HEGEMONY_PARTITION_BYTES`).
    """
    budget = resolve_build_budget()
    bound = budget if budget is not None else DEFAULT_HEGEMONY_PARTITION_BYTES
    partitions = _partition_groups(visible, max(1, bound))
    obs.add("hegemony.partitions", len(partitions))
    transit_groups: list[TransitGroup] = []
    start = 0
    for partition in partitions:
        statuses = group_statuses[start : start + len(partition)]
        transit_groups.extend(
            _groups_from_columns(
                partition,
                statuses,
                _hegemony_columns(partition, topology, trim),
            )
        )
        start += len(partition)
    return transit_groups


def _customer_learning(
    stripped_paths: list[tuple[int, ...]],
    customers_of: dict[int, frozenset[int]],
) -> dict[int, bool]:
    """For each on-path AS, did it learn the route from a direct customer?

    Paths arrive prepending-stripped.  On a path ``(vp, ..., t, next, ...,
    origin)`` the AS after ``t`` (toward the origin) is the neighbour ``t``
    accepted the route from; the flag is set when that neighbour is
    ``t``'s customer.  The propagation engine gives every AS a single
    selected route, so the flag is consistent across paths.
    """
    learned: dict[int, bool] = {}
    for stripped in stripped_paths:
        for position in range(1, len(stripped) - 1):
            transit = stripped[position]
            if transit in learned:
                continue
            toward_origin = stripped[position + 1]
            learned[transit] = toward_origin in customers_of[transit]
    return learned


# Worker-process state for group-chunk sharded transit scoring, installed
# once per worker by the pool initializer (the topology pickles once).
_shard_topology: ASTopology | None = None
_shard_trim: float = DEFAULT_TRIM


def _init_ihr_shard_worker(topology: ASTopology, trim: float) -> None:
    global _shard_topology, _shard_trim
    _shard_topology = topology
    _shard_trim = trim


def _transit_shard(task: tuple) -> tuple[dict, tuple]:
    """Score one route-group chunk; emits hegemony column shards.

    Group ids in the emitted columns are chunk-local — the driver
    materialises each shard's groups directly against its own chunk.
    Under the python kernels the shard carries finished TransitGroups
    instead (the reference loop has no columnar intermediate).
    """
    index, total, chunk, chunk_statuses = task
    assert _shard_topology is not None
    if kernels.use_numpy():
        columns = _hegemony_columns(chunk, _shard_topology, _shard_trim)
        manifest = shard_manifest("ihr.transit", index, total, len(columns[0]))
        return manifest, ("columns", columns)
    groups = _transit_groups_python(
        chunk, list(chunk_statuses), _shard_topology, _shard_trim
    )
    manifest = shard_manifest("ihr.transit", index, total, len(groups))
    return manifest, ("groups", groups)


def _sharded_transit_groups(
    visible: list[RouteGroup],
    group_statuses: list[tuple],
    topology: ASTopology,
    trim: float,
    shards: int,
    jobs: int | None,
) -> list[TransitGroup] | None:
    """Group-chunk sharded transit scoring; None falls back in-process.

    Chunks are contiguous slices of ``visible`` and every group's rows
    depend only on its own paths, so materialising each shard's groups
    from its chunk-local columns and extending in ascending shard order
    reproduces the unsharded reduction exactly.
    """
    chunks = split_evenly(visible, shards)
    total = len(chunks)
    status_chunks: list[list[tuple]] = []
    start = 0
    for chunk in chunks:
        status_chunks.append(group_statuses[start : start + len(chunk)])
        start += len(chunk)
    tasks = [
        (index, total, list(chunk), status_chunks[index])
        for index, chunk in enumerate(chunks)
    ]
    obs.add("ihr.transit_shards", total)
    manifests: list[dict] = []
    kinds: set[str] = set()
    parts: list[list[TransitGroup]] = []

    def consume(result: tuple[dict, tuple]) -> None:
        # Shard columns carry chunk-local group ids, so each shard's
        # TransitGroups materialise on arrival against its own chunk —
        # no global column concatenation, at most one shard's columns
        # resident.  Should manifest validation below reject the set,
        # the materialised parts are discarded wholesale (the usual
        # discard-don't-stitch contract), never partially reused.
        manifest, payload = result
        position = len(manifests)
        manifests.append(manifest)
        kinds.add(payload[0])
        if payload[0] == "columns" and position < total:
            parts.append(
                _groups_from_columns(
                    list(chunks[position]),
                    status_chunks[position],
                    payload[1],
                )
            )
        elif payload[0] == "groups":
            parts.append(payload[1])

    ok = pool_map_consume(
        _transit_shard,
        tasks,
        workers=obs.resolve_jobs(jobs),
        consume=consume,
        initializer=_init_ihr_shard_worker,
        initargs=(topology, trim),
    )
    if not ok:
        return None
    problems = check_shard_manifests(manifests, "ihr.transit", total)
    if not problems and len(kinds) != 1:
        problems.append(f"mixed shard payload kinds {sorted(kinds)}")
    if problems:
        log.warning(
            "discarding sharded transit scoring (%s); recomputing unsharded",
            "; ".join(problems),
        )
        obs.add("shard.discarded")
        return None
    transit_groups: list[TransitGroup] = []
    for part in parts:
        transit_groups.extend(part)
    return transit_groups
