"""Record types of the Internet Health Report substitute.

The paper consumes two IHR-derived tables (§5.3):

* the **prefix-origin dataset** — one record per routed (prefix, origin)
  with its RPKI and IRR statuses (origin hegemony is trivially 1);
* the **transit dataset** — for each (prefix, origin), the transit ASes on
  paths toward it with their hegemony scores.

``TransitGroup`` batches the transit records of all prefixes sharing an
(origin, filter-class) propagation outcome, since their paths — and hence
their transit sets — are identical; :meth:`IHRDataset.iter_transits`
expands them on demand.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.irr.validation import IRRStatus
from repro.net.prefix import Prefix
from repro.rpki.rov import RPKIStatus

__all__ = [
    "PrefixOriginRecord",
    "TransitInfo",
    "TransitGroup",
    "TransitRecord",
    "IHRDataset",
]


@dataclass(frozen=True)
class PrefixOriginRecord:
    """One routed (prefix, origin) pair with validation statuses."""

    prefix: Prefix
    origin: int
    rpki: RPKIStatus
    irr: IRRStatus
    #: Number of vantage points that saw the announcement.
    visibility: int

    @property
    def hegemony(self) -> float:
        """Origin hegemony is trivially 1 (every path ends at the origin)."""
        return 1.0


@dataclass(frozen=True)
class TransitInfo:
    """One transit AS's relationship to a propagation group."""

    hegemony: float
    #: True when this AS learned the route from one of its direct
    #: customers (the Action 1 filtering scope).
    from_customer: bool


@dataclass(frozen=True)
class TransitRecord:
    """A fully expanded transit-dataset row."""

    prefix: Prefix
    origin: int
    transit: int
    rpki: RPKIStatus
    irr: IRRStatus
    hegemony: float
    from_customer: bool


@dataclass(frozen=True)
class TransitGroup:
    """Transit info shared by all prefixes of one (origin, class) group."""

    origin: int
    prefixes: tuple[Prefix, ...]
    #: (rpki, irr) statuses aligned with ``prefixes``.
    statuses: tuple[tuple[RPKIStatus, IRRStatus], ...]
    transits: dict[int, TransitInfo]
    #: Vantage points that saw the group's announcements.
    visibility: int


@dataclass
class IHRDataset:
    """The two IHR tables for one snapshot date."""

    prefix_origins: list[PrefixOriginRecord]
    transit_groups: list[TransitGroup]

    def iter_transits(self) -> Iterator[TransitRecord]:
        """Expand transit groups into per-(prefix, transit) rows."""
        for group in self.transit_groups:
            for prefix, (rpki, irr) in zip(group.prefixes, group.statuses):
                for transit, info in group.transits.items():
                    yield TransitRecord(
                        prefix=prefix,
                        origin=group.origin,
                        transit=transit,
                        rpki=rpki,
                        irr=irr,
                        hegemony=info.hegemony,
                        from_customer=info.from_customer,
                    )

    def origins(self) -> set[int]:
        """All ASNs originating at least one visible prefix."""
        return {record.origin for record in self.prefix_origins}

    def records_of(self, origin: int) -> list[PrefixOriginRecord]:
        """Prefix-origin records originated by one AS."""
        return [r for r in self.prefix_origins if r.origin == origin]
