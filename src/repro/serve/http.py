"""A deliberately small HTTP/1.1 wire layer over asyncio streams.

The serve API needs exactly one verb (GET), JSON bodies, strong ETags
and keep-alive — a hand-rolled request parser and response serialiser
over ``asyncio.start_server`` covers that in a page of code and keeps
the dependency surface at zero (no ``http.server`` threading model, no
third-party framework).  Anything outside the subset — another verb, an
oversized request line, a malformed header — maps to a clean 4xx via
:class:`HttpError` rather than undefined behaviour.

:func:`http_get` is the matching client: the tests, the load generator
(``benchmarks/run.py --serve``) and the smoke script all speak to the
server through it, so the protocol subset is exercised end to end from
both sides.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from urllib.parse import parse_qs, unquote, urlsplit

__all__ = [
    "HTTP_VERSION",
    "MAX_HEADERS",
    "MAX_LINE_BYTES",
    "HttpError",
    "Request",
    "http_get",
    "read_request",
    "response_bytes",
]

HTTP_VERSION = "HTTP/1.1"

#: Bound on one request line or header line; longer lines are a 431.
MAX_LINE_BYTES = 8192

#: Bound on the number of header lines per request.
MAX_HEADERS = 100

_REASONS = {
    200: "OK",
    304: "Not Modified",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class HttpError(Exception):
    """A request outside the supported subset; carries the status to send.

    ``headers`` ride along into the response (e.g. ``Retry-After`` on a
    503, ``Allow`` on a 405).
    """

    def __init__(
        self, status: int, detail: str, headers: dict[str, str] | None = None
    ):
        super().__init__(detail)
        self.status = status
        self.detail = detail
        self.headers = dict(headers or {})


@dataclass
class Request:
    """One parsed request: method, split target, lower-cased headers."""

    method: str
    target: str
    path: str
    #: Query parameters, each name mapped to every value it appeared with
    #: (``set=`` is repeatable).
    query: dict[str, list[str]] = field(default_factory=dict)
    headers: dict[str, str] = field(default_factory=dict)

    @property
    def keep_alive(self) -> bool:
        return self.headers.get("connection", "").lower() != "close"

    def first(self, name: str, default: str | None = None) -> str | None:
        """The first value of query parameter ``name``, or ``default``."""
        values = self.query.get(name)
        return values[0] if values else default


async def _read_line(reader: asyncio.StreamReader) -> bytes:
    try:
        line = await reader.readuntil(b"\n")
    except asyncio.IncompleteReadError as error:
        if not error.partial:
            return b""  # clean EOF between requests
        raise HttpError(400, "truncated request") from None
    except asyncio.LimitOverrunError:
        raise HttpError(431, "request line too long") from None
    if len(line) > MAX_LINE_BYTES:
        raise HttpError(431, "request line too long")
    return line.rstrip(b"\r\n")


async def read_request(reader: asyncio.StreamReader) -> Request | None:
    """Parse one request from the stream; None on clean connection close.

    Only the served subset is accepted: a well-formed request line, at
    most :data:`MAX_HEADERS` headers, and no request body (a
    ``Content-Length``/``Transfer-Encoding`` request is refused rather
    than mis-framed).  Violations raise :class:`HttpError`, which the
    connection handler turns into a 4xx response.
    """
    request_line = await _read_line(reader)
    if not request_line:
        return None
    parts = request_line.decode("latin-1").split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise HttpError(400, f"malformed request line {request_line!r}")
    method, target, _version = parts
    headers: dict[str, str] = {}
    for _ in range(MAX_HEADERS + 1):
        line = await _read_line(reader)
        if not line:
            break
        name, separator, value = line.decode("latin-1").partition(":")
        if not separator:
            raise HttpError(400, f"malformed header line {line!r}")
        headers[name.strip().lower()] = value.strip()
    else:
        raise HttpError(431, "too many headers")
    if headers.get("content-length", "0") not in ("", "0") or (
        "transfer-encoding" in headers
    ):
        raise HttpError(400, "request bodies are not supported")
    split = urlsplit(target)
    return Request(
        method=method.upper(),
        target=target,
        path=unquote(split.path) or "/",
        query=parse_qs(split.query, keep_blank_values=True),
        headers=headers,
    )


def response_bytes(
    status: int,
    body: bytes = b"",
    headers: dict[str, str] | None = None,
    keep_alive: bool = True,
) -> bytes:
    """Serialise one response, Content-Length framed (no chunking)."""
    reason = _REASONS.get(status, "Unknown")
    lines = [f"{HTTP_VERSION} {status} {reason}"]
    merged = {"content-length": str(len(body))}
    if headers:
        merged.update({name.lower(): value for name, value in headers.items()})
    if not keep_alive:
        merged["connection"] = "close"
    lines.extend(f"{name}: {value}" for name, value in sorted(merged.items()))
    head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
    return head + body


async def http_get(
    host: str,
    port: int,
    target: str,
    headers: dict[str, str] | None = None,
    timeout: float = 30.0,
) -> tuple[int, dict[str, str], bytes]:
    """One GET against a running server: ``(status, headers, body)``.

    Opens a fresh connection per call (``Connection: close``), so each
    call is independent — the shape every test and the load generator
    needs.  The body is framed by ``Content-Length``, never by EOF: a
    forked build worker can hold an inherited duplicate of the
    connection fd open, so EOF is not a reliable end-of-response signal.
    """
    reader, writer = await asyncio.wait_for(
        asyncio.open_connection(host, port), timeout
    )
    try:
        request_headers = {"host": f"{host}:{port}", "connection": "close"}
        if headers:
            request_headers.update(
                {name.lower(): value for name, value in headers.items()}
            )
        lines = [f"GET {target} {HTTP_VERSION}"]
        lines.extend(
            f"{name}: {value}" for name, value in sorted(request_headers.items())
        )
        writer.write(("\r\n".join(lines) + "\r\n\r\n").encode("latin-1"))
        await writer.drain()
        head = await asyncio.wait_for(
            reader.readuntil(b"\r\n\r\n"), timeout
        )
        status_line, *header_lines = (
            head.rstrip(b"\r\n").decode("latin-1").split("\r\n")
        )
        status = int(status_line.split()[1])
        response_headers = {}
        for line in header_lines:
            name, separator, value = line.partition(":")
            if separator:
                response_headers[name.strip().lower()] = value.strip()
        length = int(response_headers.get("content-length", "0"))
        body = await asyncio.wait_for(reader.readexactly(length), timeout)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (OSError, asyncio.CancelledError):
            pass
    return status, response_headers, body
