"""``repro.serve``: the measurement service (async HTTP query API).

The batch pipeline answers questions by rebuilding; the MANRS
Observatory and IHR — the paper's real-world counterparts — answer them
*on demand*.  This package is that serving layer: a long-lived asyncio
HTTP/1.1 server (stdlib only) exposing the experiment registry, sweep
ledgers and rendered experiment payloads as JSON endpoints, backed by a
content-addressed result cache with strong ETags, per-key request
coalescing and a bounded background build queue over the sweep process
pool.

Endpoints::

    GET /healthz                         liveness + queue stats
    GET /metrics                         obs snapshot (counters, gauges)
    GET /experiments                     registry table
    GET /experiments/<name>?scale=&seed=&set=<dotted.path>=<val>
    GET /sweeps                          sweep ledger manifests
    GET /sweeps/<sweep_id>               one sweep's manifest + job states

CLI: ``repro serve --host --port --cache-dir --workers``; see the
README's "Serving" section and DESIGN §14 for the cache/coalescing/
queue invariants.
"""

from __future__ import annotations

from repro.serve.app import (
    DEFAULT_BUILDERS,
    DEFAULT_QUEUE_LIMIT,
    SERVE_SCHEMA_VERSION,
    ReproService,
    result_key,
    serve_forever,
)
from repro.serve.http import HttpError, Request, http_get, response_bytes

__all__ = [
    "DEFAULT_BUILDERS",
    "DEFAULT_QUEUE_LIMIT",
    "SERVE_SCHEMA_VERSION",
    "HttpError",
    "ReproService",
    "Request",
    "http_get",
    "response_bytes",
    "result_key",
    "serve_forever",
]
