"""The measurement service: routes, result cache, coalescing, build queue.

:class:`ReproService` turns the batch pipeline into a long-lived query
API.  Requests for rendered experiment payloads are answered in three
tiers, fastest first:

1. **memory** — a small LRU of recently served payloads;
2. **disk** — the checkpoint store's digest-verified result entries
   (``<cache dir>/results/<key>.json``), shared with every other
   process using the store;
3. **build** — a bounded background queue drained by worker tasks that
   run the job in the sweep process pool (the same
   :func:`repro.sweep.worker.run_job` a sweep worker runs, so served
   payloads are byte-identical to sweep and ``repro reproduce`` output).

An ``at=YYYY-MM-DD`` query parameter answers against a *live* world
instead: the worker wraps the cached base world in a
:class:`repro.delta.live.LiveWorld`, advances the observation instant to
``at`` (ROA validity windows shift; only the affected cover set is
re-validated), and runs the experiment there.  ``at`` joins the result
key, so each instant caches independently.

Identity is content-addressed: the key is
:func:`repro.datasets.checkpoint.content_key` over (experiment, scale,
seed, canonical overrides), computed *before* any build — two requests
for the same measurement share one cache entry, one in-flight build
(per-key future coalescing) and one strong ETag, across processes and
restarts.

Invariants (DESIGN §14):

* the event loop never blocks on a build — misses enqueue and await;
* at most one build per key is in flight at any time;
* a full queue refuses new keys with 503 + ``Retry-After`` (load
  shedding, never unbounded buffering);
* a served payload is always digest-verified (memory entries were
  verified on the way in; disk entries are re-verified on load).

Concurrency note: :mod:`repro.obs` spans form a single stack and must
not be held across an ``await`` (interleaved tasks would corrupt the
tree), so ``serve.request`` spans wrap only the synchronous routing and
cache-lookup portion of each request; queue waits and builds are
observable through the ``serve.*`` counters and gauges instead.
"""

from __future__ import annotations

import asyncio
import json
import logging
from collections import OrderedDict
from typing import Awaitable, Callable, Mapping

from repro import obs
from repro.config import RuntimeConfig
from repro.datasets.checkpoint import CheckpointStore, content_key
from repro.delta.live import run_job_at
from repro.experiments.registry import REGISTRY
from repro.scenario.config import ScenarioConfig
from repro.serve.http import HttpError, Request, read_request, response_bytes
from repro.sweep.ledger import RunLedger
from repro.sweep.scheduler import worker_pool
from repro.sweep.spec import Job, SweepSpecError, apply_overrides, job_id_for
from repro.sweep.worker import run_job

__all__ = [
    "DEFAULT_BUILDERS",
    "DEFAULT_QUEUE_LIMIT",
    "SERVE_SCHEMA_VERSION",
    "ReproService",
    "result_key",
    "serve_forever",
]

log = logging.getLogger(__name__)

#: Bumped whenever the served payload shape changes; part of every
#: result key, so a schema bump can never resurrect stale cache entries.
SERVE_SCHEMA_VERSION = 1

#: Default bound on queued (not yet building) cold misses.
DEFAULT_QUEUE_LIMIT = 32

#: Default number of queue-drain tasks (concurrent builds).
DEFAULT_BUILDERS = 2

#: Bound on the in-memory payload LRU.
MEMORY_ENTRIES = 128

#: Default measurement coordinates, matching the CLI defaults.
DEFAULT_SCALE = 0.2
DEFAULT_SEED = 42

_JSON_HEADERS = {"content-type": "application/json"}

#: What a cold miss resolves to: ``("ok", payload)`` or ``("error",
#: detail)``.  Plain results rather than future exceptions, so a waiter
#: that disconnected mid-build never leaves an unretrieved exception.
BuildResult = tuple[str, object]


def result_key(
    experiment: str,
    scale: float,
    seed: int,
    overrides: Mapping[str, object],
    at: str | None = None,
) -> str:
    """The content-addressed identity of one served measurement.

    ``at`` (an ISO date) keys live-world answers separately per instant;
    it enters the identity dict only when set, so every pre-existing key
    is unchanged.
    """
    identity: dict[str, object] = {
        "schema_version": SERVE_SCHEMA_VERSION,
        "experiment": experiment,
        "scale": scale,
        "seed": seed,
        "overrides": {str(k): overrides[k] for k in sorted(overrides)},
    }
    if at is not None:
        identity["at"] = at
    return content_key(identity, kind="serve-result")


def _json_body(payload: object) -> bytes:
    return json.dumps(payload, sort_keys=True, indent=1).encode()


def _etag_for(body: bytes) -> str:
    import hashlib

    return '"' + hashlib.sha256(body).hexdigest() + '"'


def _matches(etag: str, if_none_match: str) -> bool:
    if if_none_match.strip() == "*":
        return True
    candidates = (tag.strip() for tag in if_none_match.split(","))
    return etag in {tag[2:] if tag.startswith("W/") else tag for tag in candidates}


class ReproService:
    """One server instance: routing + cache + coalescing + build queue.

    ``build_fn``/``executor`` are injectable for tests (a counting
    build function on a thread pool exercises coalescing and queue
    saturation without process-pool latency); production uses
    :func:`repro.sweep.worker.run_job` on the sweep
    :func:`~repro.sweep.scheduler.worker_pool`.
    """

    def __init__(
        self,
        store: CheckpointStore | None = None,
        runtime: RuntimeConfig | None = None,
        build_fn: Callable[[Job], dict] | None = None,
        build_at_fn: Callable[[Job, str], dict] | None = None,
        executor=None,
        workers: int = 2,
        queue_limit: int = DEFAULT_QUEUE_LIMIT,
        builders: int = DEFAULT_BUILDERS,
        memory_entries: int = MEMORY_ENTRIES,
    ):
        self.store = store
        self.runtime = runtime
        self.workers = max(1, workers)
        self.queue_limit = max(1, queue_limit)
        self.builders = max(1, builders)
        self._build_fn = build_fn or run_job
        self._build_at_fn = build_at_fn or run_job_at
        self._executor = executor
        self._owns_executor = executor is None
        self._memory: OrderedDict[str, dict] = OrderedDict()
        self._memory_entries = max(1, memory_entries)
        self._inflight: dict[str, asyncio.Future] = {}
        self._queue: asyncio.Queue | None = None
        self._drainers: list[asyncio.Task] = []
        self._server: asyncio.AbstractServer | None = None
        self.port: int | None = None

    # -- lifecycle -----------------------------------------------------------

    async def start(self, host: str = "127.0.0.1", port: int = 0) -> None:
        """Bind, start the drain tasks, and begin accepting connections."""
        if self._executor is None:
            import multiprocessing

            # ``spawn``, not the platform default ``fork``: pool workers
            # start lazily, and a worker forked mid-connection would
            # inherit (and hold open) duplicates of live client sockets.
            self._executor = worker_pool(
                self.workers,
                self.runtime,
                mp_context=multiprocessing.get_context("spawn"),
            )
        self._queue = asyncio.Queue(maxsize=self.queue_limit)
        self._drainers = [
            asyncio.create_task(self._drain_loop(), name=f"serve-drain-{i}")
            for i in range(self.builders)
        ]
        self._server = await asyncio.start_server(
            self._serve_connection, host, port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        """Stop accepting, cancel drains, resolve stranded waiters."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for task in self._drainers:
            task.cancel()
        for task in self._drainers:
            try:
                await task
            except asyncio.CancelledError:
                pass
        self._drainers = []
        for future in self._inflight.values():
            if not future.done():
                future.set_result(("error", "server shutting down"))
        self._inflight.clear()
        if self._owns_executor and self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None

    async def serve_until_cancelled(self) -> None:
        assert self._server is not None, "start() first"
        try:
            await self._server.serve_forever()
        except asyncio.CancelledError:
            pass

    # -- connection handling -------------------------------------------------

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    request = await read_request(reader)
                except HttpError as error:
                    writer.write(
                        response_bytes(
                            error.status,
                            _json_body({"error": error.detail}),
                            dict(_JSON_HEADERS),
                            keep_alive=False,
                        )
                    )
                    await writer.drain()
                    return
                if request is None:
                    return
                status, headers, body = await self._respond(request)
                keep = request.keep_alive
                writer.write(response_bytes(status, body, headers, keep_alive=keep))
                await writer.drain()
                if not keep:
                    return
        except (ConnectionError, OSError):
            pass  # client went away; nothing to answer
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _respond(
        self, request: Request
    ) -> tuple[int, dict[str, str], bytes]:
        """Route + error envelope: every outcome becomes a JSON response."""
        try:
            status, payload, extra = await self._route(request)
        except HttpError as error:
            obs.add("serve.errors")
            headers = dict(_JSON_HEADERS)
            headers.update(error.headers)
            return error.status, headers, _json_body({"error": error.detail})
        except Exception as error:  # noqa: BLE001 - one request, not the server
            log.exception("unhandled error for %s", request.target)
            obs.add("serve.errors")
            return (
                500,
                dict(_JSON_HEADERS),
                _json_body({"error": f"{type(error).__name__}: {error}"}),
            )
        body = _json_body(payload)
        etag = _etag_for(body)
        headers = dict(_JSON_HEADERS)
        headers.update(extra)
        headers["etag"] = etag
        if_none_match = request.headers.get("if-none-match", "")
        if status == 200 and if_none_match and _matches(etag, if_none_match):
            obs.add("serve.not_modified")
            return 304, headers, b""
        return status, headers, body

    # -- routing -------------------------------------------------------------

    async def _route(
        self, request: Request
    ) -> tuple[int, object, dict[str, str]]:
        if request.method != "GET":
            raise HttpError(
                405, f"method {request.method} not allowed", {"allow": "GET"}
            )
        path = request.path.rstrip("/") or "/"
        obs.add("serve.requests")
        if path == "/healthz":
            with obs.span("serve.request", route="healthz"):
                return 200, self._health_payload(), {}
        if path == "/metrics":
            with obs.span("serve.request", route="metrics"):
                return 200, obs.snapshot(spans=False), {}
        if path == "/experiments":
            with obs.span("serve.request", route="experiments"):
                return 200, self._experiments_payload(), {}
        if path.startswith("/experiments/"):
            return await self._experiment(request, path.split("/", 2)[2])
        if path == "/sweeps":
            with obs.span("serve.request", route="sweeps"):
                return 200, self._sweeps_payload(), {}
        if path.startswith("/sweeps/"):
            with obs.span("serve.request", route="sweep"):
                return 200, self._sweep_payload(path.split("/", 2)[2]), {}
        raise HttpError(404, f"no route for {request.path}")

    # -- meta endpoints ------------------------------------------------------

    def _health_payload(self) -> dict:
        return {
            "status": "ok",
            "schema_version": SERVE_SCHEMA_VERSION,
            "experiments": len(REGISTRY),
            "store": str(self.store.root) if self.store else None,
            "queue_depth": self._queue.qsize() if self._queue else 0,
            "inflight": len(self._inflight),
        }

    def _experiments_payload(self) -> dict:
        return {
            "schema_version": SERVE_SCHEMA_VERSION,
            "experiments": [
                {
                    "name": spec.name,
                    "title": spec.title,
                    "paper_ref": spec.paper_ref,
                }
                for spec in REGISTRY.values()
            ],
        }

    def _sweeps_payload(self) -> dict:
        sweeps = []
        if self.store is not None:
            root = self.store.root / "sweeps"
            if root.is_dir():
                for directory in sorted(root.iterdir()):
                    if not directory.is_dir():
                        continue
                    manifest = RunLedger(directory).manifest()
                    if manifest:
                        sweeps.append(manifest)
        return {"schema_version": SERVE_SCHEMA_VERSION, "sweeps": sweeps}

    def _sweep_payload(self, sweep_id: str) -> dict:
        if self.store is None:
            raise HttpError(404, "no checkpoint store configured")
        directory = self.store.root / "sweeps" / sweep_id
        if not directory.is_dir():
            raise HttpError(404, f"no sweep {sweep_id[:16]}")
        ledger = RunLedger(directory)
        manifest = ledger.manifest()
        # The ledger only has events for jobs that ran; jobs listed in
        # the manifest but never started report as pending.
        jobs = {
            entry["job_id"]: {
                "status": "pending",
                "attempts": 0,
                "last_error": None,
                "total_seconds": 0.0,
            }
            for entry in manifest.get("jobs", [])
            if isinstance(entry, dict) and "job_id" in entry
        }
        jobs.update(
            (
                job_id,
                {
                    "status": state.status,
                    "attempts": state.attempts,
                    "last_error": state.last_error,
                    "total_seconds": round(state.total_seconds, 6),
                },
            )
            for job_id, state in sorted(ledger.job_states().items())
        )
        return {
            "schema_version": SERVE_SCHEMA_VERSION,
            "manifest": manifest,
            "jobs": jobs,
        }

    # -- the experiment endpoint ---------------------------------------------

    async def _experiment(
        self, request: Request, name: str
    ) -> tuple[int, object, dict[str, str]]:
        # Synchronous phase (span-safe): parse, key, cache lookup.
        with obs.span("serve.request", route="experiment", experiment=name):
            job, key, at = self._parse_experiment(request, name)
            payload = self._cached(key)
            if payload is not None:
                obs.add("serve.hits")
        if payload is None:
            payload = await self._build(key, job, at)
        return 200, payload, {"x-repro-key": key}

    def _parse_experiment(
        self, request: Request, name: str
    ) -> tuple[Job, str, str | None]:
        if name not in REGISTRY:
            raise HttpError(
                404,
                f"unknown experiment {name!r}; "
                f"choose from {', '.join(REGISTRY)}",
            )
        allowed = {"scale", "seed", "set", "at"}
        unknown = set(request.query) - allowed
        if unknown:
            raise HttpError(
                400,
                f"unknown query parameter(s) {sorted(unknown)}; "
                f"choose from {sorted(allowed)}",
            )
        try:
            scale = float(request.first("scale", str(DEFAULT_SCALE)))
            seed = int(request.first("seed", str(DEFAULT_SEED)))
        except ValueError as error:
            raise HttpError(400, f"bad scale/seed: {error}") from None
        if not 0 < scale <= 10:
            raise HttpError(400, f"scale {scale:g} out of range (0, 10]")
        overrides: dict[str, object] = {}
        for assignment in request.query.get("set", []):
            path, separator, raw = assignment.partition("=")
            if not separator or not path:
                raise HttpError(
                    400, f"set={assignment!r} is not <dotted.path>=<value>"
                )
            try:
                value = json.loads(raw)
            except ValueError:
                value = raw  # unquoted strings (e.g. dates) pass through
            overrides[path] = value
        try:
            apply_overrides(overrides, ScenarioConfig())
        except SweepSpecError as error:
            raise HttpError(400, str(error)) from None
        at = request.first("at", "") or None
        if at is not None:
            from datetime import date as _date

            try:
                _date.fromisoformat(at)
            except ValueError as error:
                raise HttpError(400, f"bad at date: {error}") from None
        job = Job(
            job_id=job_id_for(overrides, scale, seed, (name,)),
            scenario="serve",
            overrides=overrides,
            scale=scale,
            seed=seed,
            experiments=(name,),
        )
        return job, result_key(name, scale, seed, overrides, at=at), at

    # -- cache tiers ---------------------------------------------------------

    def _cached(self, key: str) -> dict | None:
        payload = self._memory.get(key)
        if payload is not None:
            self._memory.move_to_end(key)
            return payload
        if self.store is not None:
            payload = self.store.load_result(key)
            if payload is not None:
                self._remember(key, payload)
                return payload
        return None

    def _remember(self, key: str, payload: dict) -> None:
        self._memory[key] = payload
        self._memory.move_to_end(key)
        while len(self._memory) > self._memory_entries:
            self._memory.popitem(last=False)

    # -- the build queue -----------------------------------------------------

    async def _build(self, key: str, job: Job, at: str | None = None) -> dict:
        """Resolve a cold miss: coalesce onto in-flight work or enqueue."""
        assert self._queue is not None, "start() first"
        future = self._inflight.get(key)
        if future is not None:
            obs.add("serve.coalesced")
        else:
            obs.add("serve.misses")
            future = asyncio.get_running_loop().create_future()
            self._inflight[key] = future
            obs.gauge("serve.inflight", len(self._inflight))
            try:
                self._queue.put_nowait((key, job, at, future))
            except asyncio.QueueFull:
                self._inflight.pop(key, None)
                obs.gauge("serve.inflight", len(self._inflight))
                obs.add("serve.rejected")
                raise HttpError(
                    503,
                    f"build queue full ({self.queue_limit} pending)",
                    {"retry-after": "1"},
                ) from None
            obs.gauge("serve.queue_depth", self._queue.qsize())
        outcome, value = await asyncio.shield(future)
        if outcome != "ok":
            raise HttpError(500, f"build failed: {value}")
        return value  # type: ignore[return-value]

    async def _drain_loop(self) -> None:
        """One background builder: dequeue, build in the pool, publish."""
        assert self._queue is not None
        loop = asyncio.get_running_loop()
        while True:
            key, job, at, future = await self._queue.get()
            obs.gauge("serve.queue_depth", self._queue.qsize())
            result: BuildResult
            try:
                if at is not None:
                    # Live-world path: build (or load) the base world in
                    # the worker, advance it to the requested instant,
                    # and run the experiment against the result.
                    raw = await loop.run_in_executor(
                        self._executor, self._build_at_fn, job, at
                    )
                else:
                    raw = await loop.run_in_executor(
                        self._executor, self._build_fn, job
                    )
                result = ("ok", self._publish(key, job, raw, at))
            except asyncio.CancelledError:
                if not future.done():
                    future.set_result(("error", "server shutting down"))
                self._inflight.pop(key, None)
                raise
            except Exception as error:  # noqa: BLE001 - per-request isolation
                log.exception("build failed for %s", key[:16])
                obs.add("serve.build_errors")
                result = ("error", f"{type(error).__name__}: {error}")
            self._inflight.pop(key, None)
            obs.gauge("serve.inflight", len(self._inflight))
            if not future.done():
                future.set_result(result)
            self._queue.task_done()

    def _publish(
        self,
        key: str,
        job: Job,
        raw: Mapping[str, dict],
        at: str | None = None,
    ) -> dict:
        """Wrap a built result into the served payload and cache it."""
        name = job.experiments[0]
        if name not in raw:
            raise ValueError(f"build returned no payload for {name!r}")
        spec = REGISTRY[name]
        payload = {
            "schema_version": SERVE_SCHEMA_VERSION,
            "key": key,
            "experiment": name,
            "title": spec.title,
            "paper_ref": spec.paper_ref,
            "scale": job.scale,
            "seed": job.seed,
            "overrides": dict(job.overrides),
            "result": dict(raw[name]),
        }
        if at is not None:
            payload["at"] = at
        self._remember(key, payload)
        if self.store is not None:
            self.store.save_result(key, payload)
        obs.add("serve.built")
        return payload


async def serve_forever(
    service: ReproService, host: str, port: int, announce=print
) -> None:
    """Start ``service`` and run until cancelled (the CLI entry point)."""
    await service.start(host, port)
    announce(f"serving on http://{host}:{service.port}")
    try:
        await service.serve_until_cancelled()
    finally:
        await service.stop()
