"""MANRS participation analyses (§6.3, §7).

Three views of who is in MANRS:

* **geographical distribution** — member AS counts per RIR over time
  (Figure 4a) and member org / AS growth (Figure 2);
* **routing-table presence** — share of routed IPv4 address space
  announced by member ASes, per RIR (Figure 4b);
* **registration completeness** — how much of each member organisation's
  AS and address-space footprint is actually registered in MANRS
  (Finding 7.0).
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import date

from repro.bgp.table import Prefix2AS
from repro.manrs.registry import MANRSRegistry
from repro.net.prefix import aggregate_address_count
from repro.registry.rir import RIR
from repro.topology.model import ASTopology

__all__ = [
    "members_by_rir",
    "routed_space_share_by_rir",
    "CompletenessReport",
    "registration_completeness",
]


def members_by_rir(
    topology: ASTopology, manrs: MANRSRegistry, as_of: date
) -> dict[RIR, int]:
    """Member AS counts per RIR region at ``as_of`` (Figure 4a)."""
    counts = {rir: 0 for rir in RIR}
    for asn in manrs.member_asns(as_of=as_of):
        if asn in topology:
            counts[topology.get_as(asn).rir] += 1
    return counts


def routed_space_share_by_rir(
    topology: ASTopology,
    manrs: MANRSRegistry,
    prefix2as: Prefix2AS,
    as_of: date,
) -> dict[RIR, float]:
    """Percent of all routed IPv4 space announced by members, per member
    RIR (Figure 4b).  Shares are relative to the whole table, so the
    stacked per-RIR series sums to the overall MANRS share."""
    total = prefix2as.total_address_space
    if total == 0:
        return {rir: 0.0 for rir in RIR}
    members = manrs.member_asns(as_of=as_of)
    by_rir: dict[RIR, list] = {rir: [] for rir in RIR}
    for asn in members:
        if asn not in topology:
            continue
        rir = topology.get_as(asn).rir
        by_rir[rir].extend(
            p for p in prefix2as.prefixes_of(asn) if p.version == 4
        )
    return {
        rir: 100.0 * aggregate_address_count(prefixes) / total
        for rir, prefixes in by_rir.items()
    }


@dataclass(frozen=True)
class CompletenessReport:
    """Finding 7.0: organisation-level registration completeness."""

    total_orgs: int
    #: Organisations whose every AS is registered in MANRS.
    all_asns_registered: int
    #: Organisations announcing IPv4 space only through registered ASes.
    all_space_via_registered: int
    #: Organisations announcing some space from unregistered ASes.
    partial_announcers: int
    #: ...of which, organisations announcing *only* from unregistered ASes.
    only_unregistered_announcers: int
    #: Organisations with unregistered ASes that are all quiescent.
    quiescent_unregistered_only: int

    @property
    def pct_all_asns(self) -> float:
        """Percent of member orgs with every AS registered."""
        return 100.0 * self.all_asns_registered / self.total_orgs if self.total_orgs else 0.0

    @property
    def pct_all_space(self) -> float:
        """Percent of member orgs announcing only via registered ASes."""
        return (
            100.0 * self.all_space_via_registered / self.total_orgs
            if self.total_orgs
            else 0.0
        )


def registration_completeness(
    topology: ASTopology,
    manrs: MANRSRegistry,
    prefix2as: Prefix2AS,
    as_of: date,
) -> CompletenessReport:
    """Compute Finding 7.0's organisation-level statistics."""
    member_asns = manrs.member_asns(as_of=as_of)
    total = all_asns = all_space = partial = only_unregistered = quiescent_only = 0
    for org_id in sorted(manrs.member_orgs(as_of=as_of)):
        org = topology.get_org(org_id)
        registered = [a for a in org.asns if a in member_asns]
        unregistered = [a for a in org.asns if a not in member_asns]
        if not registered:
            continue  # org joined a program with ASNs outside topology
        total += 1
        if not unregistered:
            all_asns += 1

        def announces(asn: int) -> bool:
            return any(
                p.version == 4 for p in prefix2as.prefixes_of(asn)
            )

        unregistered_announcing = [a for a in unregistered if announces(a)]
        registered_announcing = [a for a in registered if announces(a)]
        if not unregistered_announcing:
            all_space += 1
            if unregistered:
                quiescent_only += 1
        else:
            partial += 1
            if not registered_announcing:
                only_unregistered += 1
    return CompletenessReport(
        total_orgs=total,
        all_asns_registered=all_asns,
        all_space_via_registered=all_space,
        partial_announcers=partial,
        only_unregistered_announcers=only_unregistered,
        quiescent_unregistered_only=quiescent_only,
    )
