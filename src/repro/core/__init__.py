"""Core analyses: the paper's §6 methodology."""

from repro.core.casestudy import CaseStudyRow, attribute_unconformant
from repro.core.classification import is_conformant, is_unconformant
from repro.core.conformance import (
    OriginationStats,
    PropagationStats,
    is_action1_fully_conformant,
    is_action4_conformant,
    origination_stats,
    propagation_stats,
)
from repro.core.impact import (
    SaturationReport,
    irr_coverage,
    preference_scores,
    rpki_saturation,
)
from repro.core.participation import (
    CompletenessReport,
    members_by_rir,
    registration_completeness,
    routed_space_share_by_rir,
)
from repro.core.report import (
    Action1Summary,
    Action4Summary,
    EcosystemReport,
    build_report,
    render_report,
)
from repro.core.stability import (
    StabilityClass,
    StabilityReport,
    conformance_stability,
)
from repro.core.readiness import (
    ReadinessReport,
    check_readiness,
    render_readiness,
)
from repro.core.rov_inference import (
    InferenceQuality,
    evaluate_inference,
    infer_rov,
)
from repro.core.stats import CDF, make_cdf

__all__ = [
    "Action1Summary",
    "Action4Summary",
    "CDF",
    "CaseStudyRow",
    "CompletenessReport",
    "EcosystemReport",
    "InferenceQuality",
    "ReadinessReport",
    "check_readiness",
    "render_readiness",
    "evaluate_inference",
    "infer_rov",
    "OriginationStats",
    "PropagationStats",
    "SaturationReport",
    "StabilityClass",
    "StabilityReport",
    "attribute_unconformant",
    "build_report",
    "conformance_stability",
    "irr_coverage",
    "is_action1_fully_conformant",
    "is_action4_conformant",
    "is_conformant",
    "is_unconformant",
    "make_cdf",
    "members_by_rir",
    "origination_stats",
    "preference_scores",
    "propagation_stats",
    "registration_completeness",
    "render_report",
    "routed_space_share_by_rir",
    "rpki_saturation",
]
