"""MANRS membership readiness check.

§12: "We will make our analysis code available ... to non-MANRS networks
for checking if they meet the requirements to join MANRS."  This module
is that check: given any AS in a world (member or not), evaluate it
against the mandatory ISP-program actions the paper measures (Action 4
origination, Action 1 filtering) plus the Action 3 contact requirement,
and report exactly what blocks admission.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.classification import is_conformant
from repro.core.conformance import (
    is_action1_fully_conformant,
    is_action4_conformant,
    origination_stats,
    propagation_stats,
)
from repro.manrs.actions import Program, action4_threshold
from repro.manrs.contacts import PeeringDBLike, is_action3_conformant
from repro.manrs.sav import (
    SpooferCampaign,
    is_action2_conformant,
    is_action2_mandatory,
)
from repro.scenario.world import World

__all__ = [
    "ReadinessReport",
    "check_readiness",
    "readiness_as_dict",
    "render_readiness",
]


@dataclass(frozen=True)
class ReadinessReport:
    """Would this AS pass the mandatory MANRS ISP actions today?"""

    asn: int
    already_member: bool
    #: Action 4: percent of originated prefixes conformant, and verdict.
    origination_pct: float
    action4_ok: bool
    unregistered_prefixes: tuple[str, ...]
    #: Action 1: unconformant customer announcements propagated.
    customer_unconformant: int
    action1_ok: bool
    #: Action 3: contact information present and fresh.
    action3_ok: bool
    blockers: tuple[str, ...] = field(default_factory=tuple)
    #: Action 2 (SAV): Spoofer-evidence verdict — ``None`` means no
    #: measurement evidence was supplied or the network was never tested.
    action2_ok: bool | None = None
    #: Whether the evaluated program marks Action 2 as mandatory.
    action2_required: bool = False

    @property
    def ready(self) -> bool:
        """True when every mandatory action passes.

        Action 2 only gates admission when the program mandates it *and*
        Spoofer evidence says the network leaks spoofed traffic; absence
        of evidence never blocks (the paper's §4.4 measurement gap).
        """
        if self.action2_required and self.action2_ok is False:
            return False
        return self.action4_ok and self.action1_ok and self.action3_ok


def check_readiness(
    world: World,
    asn: int,
    peeringdb: PeeringDBLike | None = None,
    program: Program = Program.ISP,
    spoofer: SpooferCampaign | None = None,
) -> ReadinessReport:
    """Evaluate one AS against the program's mandatory actions.

    Passing ``spoofer`` (a Spoofer measurement campaign) adds an
    Action 2 verdict; without it the report is exactly what this check
    has always produced.
    """
    og_stats = origination_stats(world.ihr).get(asn)
    pg_stats = propagation_stats(world.ihr).get(asn)
    peeringdb = peeringdb or PeeringDBLike()

    action4_ok = is_action4_conformant(og_stats, program)
    action1_ok = is_action1_fully_conformant(pg_stats)
    action3_ok = is_action3_conformant(
        asn, world.irr, peeringdb, world.snapshot_date
    )
    action2_ok = (
        is_action2_conformant(asn, spoofer) if spoofer is not None else None
    )
    action2_required = is_action2_mandatory(program)
    unregistered = tuple(
        str(record.prefix)
        for record in world.ihr.records_of(asn)
        if not is_conformant(record.rpki, record.irr)
    )
    blockers: list[str] = []
    if not action4_ok:
        threshold = action4_threshold(program)
        pct = og_stats.og_conformant if og_stats else 0.0
        blockers.append(
            f"Action 4: only {pct:.1f}% of originated prefixes are "
            f"IRR/RPKI-valid (needs {threshold:.0f}%); fix: "
            + ", ".join(unregistered[:5])
        )
    if not action1_ok and pg_stats is not None:
        blockers.append(
            f"Action 1: {pg_stats.customer_unconformant} unconformant "
            "customer announcements propagated; deploy prefix filters on "
            "customer sessions"
        )
    if not action3_ok:
        blockers.append(
            "Action 3: no fresh contact information in PeeringDB or the IRR"
        )
    if action2_ok is False:
        severity = "" if action2_required else " (advisory for this program)"
        blockers.append(
            "Action 2: Spoofer runs show spoofed packets escaping; "
            f"deploy SAV on customer edges{severity}"
        )
    return ReadinessReport(
        asn=asn,
        already_member=world.is_member(asn),
        origination_pct=og_stats.og_conformant if og_stats else 100.0,
        action4_ok=action4_ok,
        unregistered_prefixes=unregistered,
        customer_unconformant=(
            pg_stats.customer_unconformant if pg_stats else 0
        ),
        action1_ok=action1_ok,
        action3_ok=action3_ok,
        blockers=tuple(blockers),
        action2_ok=action2_ok,
        action2_required=action2_required,
    )


def readiness_as_dict(report: ReadinessReport) -> dict:
    """The readiness check as a JSON-ready document (``ready --json``)."""
    document = {
        "asn": report.asn,
        "ready": report.ready,
        "already_member": report.already_member,
        "action4": {
            "ok": report.action4_ok,
            "origination_pct": report.origination_pct,
            "unregistered_prefixes": list(report.unregistered_prefixes),
        },
        "action1": {
            "ok": report.action1_ok,
            "customer_unconformant": report.customer_unconformant,
        },
        "action3": {"ok": report.action3_ok},
        "blockers": list(report.blockers),
    }
    if report.action2_ok is not None:
        document["action2"] = {
            "ok": report.action2_ok,
            "required": report.action2_required,
        }
    return document


def render_readiness(report: ReadinessReport) -> str:
    """Human-readable readiness summary."""
    status = "READY to join MANRS" if report.ready else "NOT ready"
    if report.already_member:
        status += " (already a member)"
    lines = [
        f"AS{report.asn}: {status}",
        f"  Action 4 (origination): "
        f"{'pass' if report.action4_ok else 'FAIL'} "
        f"({report.origination_pct:.1f}% conformant)",
        f"  Action 1 (filtering):   "
        f"{'pass' if report.action1_ok else 'FAIL'} "
        f"({report.customer_unconformant} unconformant customer routes)",
        f"  Action 3 (contacts):    "
        f"{'pass' if report.action3_ok else 'FAIL'}",
    ]
    if report.action2_ok is not None:
        qualifier = "" if report.action2_required else " [advisory]"
        lines.append(
            f"  Action 2 (SAV):         "
            f"{'pass' if report.action2_ok else 'FAIL'}{qualifier}"
        )
    for blocker in report.blockers:
        lines.append(f"  -> {blocker}")
    return "\n".join(lines)
