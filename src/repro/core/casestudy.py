"""Case-study attribution of unconformant prefix-origins (§8.4, Table 1).

For each unconformant prefix-origin of a network under study, the paper
asks *whom the mismatching RPKI/IRR registration points at*: a sibling AS
of the same organisation, an AS in a direct customer-provider relationship
(the two are merged into one "Sibling/C-P" column), or an unrelated AS.
A majority in Sibling/C-P means the unconformance stems from internal
misconfiguration or business churn — i.e. it is easily fixable.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.classification import is_unconformant
from repro.ihr.records import IHRDataset
from repro.irr.database import IRRCollection, IRRDatabase
from repro.rpki.rov import ROVValidator
from repro.topology.as2org import As2Org
from repro.topology.model import ASTopology

__all__ = ["CaseStudyRow", "attribute_unconformant"]


@dataclass(frozen=True)
class CaseStudyRow:
    """One Table 1 row: attribution counts for one network."""

    label: str
    asns: tuple[int, ...]
    #: Prefix-origins that are RPKI Invalid.
    rpki_invalid: int
    rpki_sibling_cp: int
    rpki_unrelated: int
    #: Prefix-origins that are IRR Invalid while RPKI NotFound.
    irr_invalid: int
    irr_sibling_cp: int
    irr_unrelated: int

    @property
    def total_attributed(self) -> int:
        """All attributed unconformant prefix-origins."""
        return self.rpki_invalid + self.irr_invalid

    @property
    def sibling_cp_fraction(self) -> float:
        """Share of attributed prefix-origins in the Sibling/C-P bucket."""
        total = self.total_attributed
        if not total:
            return 0.0
        return (self.rpki_sibling_cp + self.irr_sibling_cp) / total


def attribute_unconformant(
    label: str,
    asns: tuple[int, ...],
    dataset: IHRDataset,
    rov: ROVValidator,
    irr: IRRCollection | IRRDatabase,
    topology: ASTopology,
    as2org: As2Org,
) -> CaseStudyRow:
    """Build one Table 1 row for the given network's ASNs."""
    asn_set = set(asns)
    rpki_invalid = rpki_sibling_cp = rpki_unrelated = 0
    irr_invalid = irr_sibling_cp = irr_unrelated = 0
    for record in dataset.prefix_origins:
        if record.origin not in asn_set:
            continue
        if not is_unconformant(record.rpki, record.irr):
            continue
        if record.rpki.is_invalid:
            registered = {
                vrp.asn
                for vrp in rov.covering_vrps(record.prefix)
                if vrp.asn != record.origin
            }
            rpki_invalid += 1
            if _any_related(record.origin, registered, topology, as2org):
                rpki_sibling_cp += 1
            else:
                rpki_unrelated += 1
        else:
            # RPKI NotFound and IRR Invalid: attribute via route objects.
            registered = {
                obj.origin
                for obj in irr.routes_covering(record.prefix)
                if obj.origin != record.origin
            }
            irr_invalid += 1
            if _any_related(record.origin, registered, topology, as2org):
                irr_sibling_cp += 1
            else:
                irr_unrelated += 1
    return CaseStudyRow(
        label=label,
        asns=tuple(sorted(asn_set)),
        rpki_invalid=rpki_invalid,
        rpki_sibling_cp=rpki_sibling_cp,
        rpki_unrelated=rpki_unrelated,
        irr_invalid=irr_invalid,
        irr_sibling_cp=irr_sibling_cp,
        irr_unrelated=irr_unrelated,
    )


def _any_related(
    origin: int,
    registered: set[int],
    topology: ASTopology,
    as2org: As2Org,
) -> bool:
    """Is any mismatching registered origin a sibling or direct C-P?

    AS0 registrations (RFC 7607 "do not announce") are treated as
    self-inflicted, i.e. Sibling — the §8.1 Indonesian-ISP case, where the
    holder's own AS0 ROA collided with its RADB registration.
    """
    if 0 in registered:
        return True
    neighbors = topology.providers_of(origin) | topology.customers_of(origin)
    for candidate in registered:
        if as2org.same_org(origin, candidate):
            return True
        if candidate in neighbors:
            return True
    return False
