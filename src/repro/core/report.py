"""Whole-ecosystem report: every headline finding from one world.

``build_report`` runs the full §6 methodology over a built world and
returns a structured summary; ``render_report`` formats it as the textual
report the examples print.  This is the "operator-facing" entry point the
paper's future-work section promises ("we will make our analysis code
available to network operators").
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.conformance import (
    OriginationStats,
    PropagationStats,
    is_action1_fully_conformant,
    is_action4_conformant,
    origination_stats,
    propagation_stats,
)
from repro.core.impact import irr_coverage, preference_scores, rpki_saturation
from repro.core.participation import (
    CompletenessReport,
    registration_completeness,
)
from repro.manrs.actions import Program
from repro.scenario.world import World
from repro.topology.classify import SizeClass

__all__ = [
    "Action4Summary",
    "Action1Summary",
    "EcosystemReport",
    "build_report",
    "render_report",
    "report_as_dict",
]


@dataclass
class Action4Summary:
    """Action 4 conformance for one program (Findings 8.3/8.4)."""

    program: Program
    total_members: int = 0
    trivially_conformant: int = 0
    conformant: int = 0
    unconformant_asns: list[int] = field(default_factory=list)

    @property
    def pct_conformant(self) -> float:
        """Percent of member ASNs conformant (incl. trivial)."""
        return (
            100.0 * self.conformant / self.total_members
            if self.total_members
            else 100.0
        )


@dataclass
class Action1Summary:
    """Action 1 conformance for one size class (Table 2)."""

    size: SizeClass
    transit_total: int = 0
    transit_conformant: int = 0
    total_members: int = 0
    total_conformant: int = 0

    @property
    def pct_transit_conformant(self) -> float:
        """Percent among ASes actually providing customer transit."""
        return (
            100.0 * self.transit_conformant / self.transit_total
            if self.transit_total
            else 100.0
        )

    @property
    def pct_total_conformant(self) -> float:
        """Percent including trivially conformant members."""
        return (
            100.0 * self.total_conformant / self.total_members
            if self.total_members
            else 100.0
        )


@dataclass
class EcosystemReport:
    """Everything the paper's summary section reports, for one world."""

    n_ases: int
    n_member_ases: int
    n_member_orgs: int
    completeness: CompletenessReport
    action4: dict[Program, Action4Summary]
    action1: dict[SizeClass, Action1Summary]
    saturation_manrs: float
    saturation_other: float
    irr_coverage_manrs: float
    irr_coverage_other: float
    #: Fraction of prefix-origins preferring MANRS transit, per RPKI status.
    preference_positive: dict[str, float]


def build_report(world: World) -> EcosystemReport:
    """Run the complete methodology over ``world``."""
    members = world.members()
    og_stats = origination_stats(world.ihr)
    pg_stats = propagation_stats(world.ihr)

    action4: dict[Program, Action4Summary] = {}
    for program in (Program.ISP, Program.CDN):
        summary = Action4Summary(program=program)
        for asn in sorted(world.manrs.member_asns(
            as_of=world.snapshot_date, program=program
        )):
            summary.total_members += 1
            stats = og_stats.get(asn)
            if stats is None or stats.total == 0:
                summary.trivially_conformant += 1
                summary.conformant += 1
            elif is_action4_conformant(stats, program):
                summary.conformant += 1
            else:
                summary.unconformant_asns.append(asn)
        action4[program] = summary

    action1: dict[SizeClass, Action1Summary] = {}
    for size in SizeClass:
        action1[size] = Action1Summary(size=size)
    for asn in sorted(members):
        if asn not in world.topology:
            continue
        summary = action1[world.size_of[asn]]
        summary.total_members += 1
        stats = pg_stats.get(asn)
        fully = is_action1_fully_conformant(stats)
        if stats is not None and stats.customer_total > 0:
            summary.transit_total += 1
            if fully:
                summary.transit_conformant += 1
        if fully:
            summary.total_conformant += 1

    sat_m, sat_n = rpki_saturation(world.prefix2as, world.rov, members)
    cov_m, cov_n = irr_coverage(world.prefix2as, world.irr, members)
    scores = preference_scores(world.ihr, members)
    preference_positive = {
        status: (
            sum(1 for s in values if s > 0) / len(values) if values else 0.0
        )
        for status, values in scores.items()
    }
    return EcosystemReport(
        n_ases=len(world.topology),
        n_member_ases=len(members),
        n_member_orgs=len(world.manrs.member_orgs(as_of=world.snapshot_date)),
        completeness=registration_completeness(
            world.topology, world.manrs, world.prefix2as, world.snapshot_date
        ),
        action4=action4,
        action1=action1,
        saturation_manrs=sat_m.saturation,
        saturation_other=sat_n.saturation,
        irr_coverage_manrs=cov_m.saturation,
        irr_coverage_other=cov_n.saturation,
        preference_positive=preference_positive,
    )


def report_as_dict(report: EcosystemReport) -> dict:
    """The report as a JSON-ready document (``report --json``).

    Enum keys become their string values; derived percentages are
    included alongside the raw counts so consumers need not recompute
    them.
    """
    return {
        "n_ases": report.n_ases,
        "n_member_ases": report.n_member_ases,
        "n_member_orgs": report.n_member_orgs,
        "completeness": {
            "total_orgs": report.completeness.total_orgs,
            "all_asns_registered": report.completeness.all_asns_registered,
            "all_space_via_registered": (
                report.completeness.all_space_via_registered
            ),
            "partial_announcers": report.completeness.partial_announcers,
            "only_unregistered_announcers": (
                report.completeness.only_unregistered_announcers
            ),
            "pct_all_asns": report.completeness.pct_all_asns,
            "pct_all_space": report.completeness.pct_all_space,
        },
        "action4": {
            program.value: {
                "total_members": summary.total_members,
                "trivially_conformant": summary.trivially_conformant,
                "conformant": summary.conformant,
                "pct_conformant": summary.pct_conformant,
                "unconformant_asns": list(summary.unconformant_asns),
            }
            for program, summary in report.action4.items()
        },
        "action1": {
            size.value: {
                "transit_total": summary.transit_total,
                "transit_conformant": summary.transit_conformant,
                "total_members": summary.total_members,
                "total_conformant": summary.total_conformant,
                "pct_transit_conformant": summary.pct_transit_conformant,
                "pct_total_conformant": summary.pct_total_conformant,
            }
            for size, summary in report.action1.items()
        },
        "rpki_saturation": {
            "manrs": report.saturation_manrs,
            "other": report.saturation_other,
        },
        "irr_coverage": {
            "manrs": report.irr_coverage_manrs,
            "other": report.irr_coverage_other,
        },
        "preference_positive": dict(report.preference_positive),
    }


def render_report(report: EcosystemReport) -> str:
    """Format the report as readable text."""
    lines = [
        "MANRS ecosystem report",
        "======================",
        f"ASes in topology: {report.n_ases}",
        f"MANRS member ASNs: {report.n_member_ases} "
        f"({report.n_member_orgs} organisations)",
        "",
        "Participation (Finding 7.0)",
        f"  orgs with all ASNs registered:        "
        f"{report.completeness.all_asns_registered} "
        f"({report.completeness.pct_all_asns:.0f}%)",
        f"  orgs announcing only via registered:  "
        f"{report.completeness.all_space_via_registered} "
        f"({report.completeness.pct_all_space:.0f}%)",
        "",
        "Action 4 conformance (Findings 8.3/8.4)",
    ]
    for program, summary in report.action4.items():
        lines.append(
            f"  {program.value.upper():4} program: {summary.conformant}/"
            f"{summary.total_members} conformant "
            f"({summary.pct_conformant:.0f}%), "
            f"{summary.trivially_conformant} trivially"
        )
    lines.append("")
    lines.append("Action 1 conformance (Table 2)")
    for size, summary in report.action1.items():
        lines.append(
            f"  {size.value:6}: transit {summary.transit_conformant}/"
            f"{summary.transit_total} "
            f"({summary.pct_transit_conformant:.1f}%), total "
            f"{summary.total_conformant}/{summary.total_members} "
            f"({summary.pct_total_conformant:.1f}%)"
        )
    lines.extend(
        [
            "",
            "Impact (Findings 8.8, 9.4)",
            f"  RPKI saturation: MANRS {report.saturation_manrs:.1f}% vs "
            f"non-MANRS {report.saturation_other:.1f}%",
            f"  IRR coverage:    MANRS {report.irr_coverage_manrs:.1f}% vs "
            f"non-MANRS {report.irr_coverage_other:.1f}%",
            "  prefix-origins preferring MANRS transit:",
        ]
    )
    for status, fraction in report.preference_positive.items():
        lines.append(f"    RPKI {status:10}: {100 * fraction:.0f}%")
    return "\n".join(lines)
