"""Active ROV-deployment inference (the §4.2 related-work methodology).

Reuter et al. (2018) and successors infer ROV by announcing a *beacon
pair* — one RPKI-Valid and one RPKI-Invalid prefix from the same origin —
and checking which networks lose reachability to the invalid one.  The
paper declines to use this method because it is hard to validate (§4.2)
and conflates an AS's own filtering with its providers' (§11).

This module implements the methodology against the simulator, where
ground truth is known, so the error structure can actually be measured:
an AS behind ROV-filtering providers loses the invalid beacon without
deploying anything itself — the classic false positive.  Using beacons
from several origins reduces, but does not eliminate, the effect.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from repro.bgp.policy import ASPolicy, RouteClass
from repro.bgp.propagation import PropagationEngine

__all__ = ["InferenceQuality", "infer_rov", "evaluate_inference"]


@dataclass(frozen=True)
class InferenceQuality:
    """Confusion statistics for one inference run."""

    true_positives: int
    false_positives: int
    false_negatives: int
    true_negatives: int

    @property
    def precision(self) -> float:
        """TP / (TP + FP); 1.0 when nothing was inferred positive."""
        positives = self.true_positives + self.false_positives
        return self.true_positives / positives if positives else 1.0

    @property
    def recall(self) -> float:
        """TP / (TP + FN); 1.0 when nothing was actually positive."""
        actual = self.true_positives + self.false_negatives
        return self.true_positives / actual if actual else 1.0


def infer_rov(
    engine: PropagationEngine,
    beacon_origins: Sequence[int],
    targets: Iterable[int],
    min_evidence: int = 1,
) -> dict[int, bool]:
    """Infer ROV deployment per target from beacon reachability.

    For each beacon origin, announce a Valid and an Invalid prefix; a
    target showing "Valid reachable, Invalid not" counts as one piece of
    evidence.  A target is inferred ROV-deploying when at least
    ``min_evidence`` beacons agree (and no beacon contradicts by
    delivering the invalid route).
    """
    targets = list(targets)
    evidence: dict[int, int] = {asn: 0 for asn in targets}
    contradicted: set[int] = set()
    for origin in beacon_origins:
        valid_routes = engine.propagate(
            origin, RouteClass(), targets=targets
        )
        invalid_routes = engine.propagate(
            origin, RouteClass(rpki_invalid=True), targets=targets
        )
        for asn in targets:
            if asn == origin:
                continue
            has_valid = asn in valid_routes
            has_invalid = asn in invalid_routes
            if has_invalid:
                contradicted.add(asn)
            elif has_valid:
                evidence[asn] += 1
    return {
        asn: evidence[asn] >= min_evidence and asn not in contradicted
        for asn in targets
    }


def evaluate_inference(
    inferred: Mapping[int, bool],
    policies: Mapping[int, ASPolicy],
) -> InferenceQuality:
    """Score an inference against the ground-truth policies."""
    tp = fp = fn = tn = 0
    for asn, verdict in inferred.items():
        actual = policies[asn].rov if asn in policies else False
        if verdict and actual:
            tp += 1
        elif verdict and not actual:
            fp += 1
        elif not verdict and actual:
            fn += 1
        else:
            tn += 1
    return InferenceQuality(
        true_positives=tp,
        false_positives=fp,
        false_negatives=fn,
        true_negatives=tn,
    )
