"""Per-AS conformance metrics: Formulas 1–6 and the action thresholds.

Origination metrics (§6.4, Action 4):

* ``OG_rpki_valid``  — % of originated prefixes RPKI Valid (Formula 1);
* ``OG_irr_valid``   — % IRR Valid (Formula 2);
* ``OG_conformant``  — % MANRS-conformant (Formula 3).

Propagation metrics (Action 1), computed over the IHR transit dataset:

* ``PG_rpki_invalid`` — % of propagated prefixes RPKI Invalid or Invalid
  Length (Formula 4);
* ``PG_irr_invalid``  — % IRR Invalid (Formula 5);
* ``PG_unconformant`` — % MANRS-unconformant among prefixes learned from
  direct customers (Formula 6).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.classification import is_conformant, is_unconformant
from repro.ihr.records import IHRDataset
from repro.irr.validation import IRRStatus
from repro.manrs.actions import Program, action4_threshold
from repro.rpki.rov import RPKIStatus

__all__ = [
    "OriginationStats",
    "PropagationStats",
    "origination_stats",
    "propagation_stats",
    "is_action4_conformant",
    "is_action1_fully_conformant",
]


@dataclass
class OriginationStats:
    """Counts over the prefixes one AS originates."""

    total: int = 0
    rpki_valid: int = 0
    rpki_invalid: int = 0       # both invalid flavours
    rpki_not_found: int = 0
    irr_valid: int = 0
    irr_invalid_origin: int = 0
    irr_invalid_length: int = 0
    irr_not_found: int = 0
    conformant: int = 0
    unconformant: int = 0

    def add(self, rpki: RPKIStatus, irr: IRRStatus) -> None:
        """Account one originated prefix."""
        self.total += 1
        if rpki is RPKIStatus.VALID:
            self.rpki_valid += 1
        elif rpki.is_invalid:
            self.rpki_invalid += 1
        else:
            self.rpki_not_found += 1
        if irr is IRRStatus.VALID:
            self.irr_valid += 1
        elif irr is IRRStatus.INVALID_ORIGIN:
            self.irr_invalid_origin += 1
        elif irr is IRRStatus.INVALID_LENGTH:
            self.irr_invalid_length += 1
        else:
            self.irr_not_found += 1
        if is_conformant(rpki, irr):
            self.conformant += 1
        if is_unconformant(rpki, irr):
            self.unconformant += 1

    def _pct(self, count: int) -> float:
        return 100.0 * count / self.total if self.total else 0.0

    @property
    def og_rpki_valid(self) -> float:
        """Formula 1 (percent)."""
        return self._pct(self.rpki_valid)

    @property
    def og_irr_valid(self) -> float:
        """Formula 2 (percent)."""
        return self._pct(self.irr_valid)

    @property
    def og_conformant(self) -> float:
        """Formula 3 (percent)."""
        return self._pct(self.conformant)

    @property
    def only_rpki_valid(self) -> bool:
        """All originated prefixes RPKI Valid (Figure 5a's right mode)."""
        return self.total > 0 and self.rpki_valid == self.total

    @property
    def no_rpki_valid(self) -> bool:
        """No originated prefix RPKI Valid (Figure 5a's left mode)."""
        return self.total > 0 and self.rpki_valid == 0

    @property
    def irr_only_registration(self) -> bool:
        """Registered in the IRR but entirely absent from the RPKI (§8.2)."""
        return (
            self.total > 0
            and self.rpki_not_found == self.total
            and self.irr_not_found < self.total
        )


@dataclass
class PropagationStats:
    """Counts over the prefixes one AS provides transit for."""

    total: int = 0
    rpki_invalid: int = 0
    irr_invalid: int = 0
    customer_total: int = 0
    customer_unconformant: int = 0

    def add(
        self,
        rpki: RPKIStatus,
        irr: IRRStatus,
        from_customer: bool,
    ) -> None:
        """Account one propagated prefix."""
        self.total += 1
        if rpki.is_invalid:
            self.rpki_invalid += 1
        if irr is IRRStatus.INVALID_ORIGIN:
            self.irr_invalid += 1
        if from_customer:
            self.customer_total += 1
            if is_unconformant(rpki, irr):
                self.customer_unconformant += 1

    @property
    def pg_rpki_invalid(self) -> float:
        """Formula 4 (percent)."""
        return 100.0 * self.rpki_invalid / self.total if self.total else 0.0

    @property
    def pg_irr_invalid(self) -> float:
        """Formula 5 (percent)."""
        return 100.0 * self.irr_invalid / self.total if self.total else 0.0

    @property
    def pg_unconformant(self) -> float:
        """Formula 6 (percent, customer announcements only)."""
        if not self.customer_total:
            return 0.0
        return 100.0 * self.customer_unconformant / self.customer_total


def origination_stats(dataset: IHRDataset) -> dict[int, OriginationStats]:
    """Per-origin statistics over the IHR prefix-origin dataset."""
    stats: dict[int, OriginationStats] = {}
    for record in dataset.prefix_origins:
        stats.setdefault(record.origin, OriginationStats()).add(
            record.rpki, record.irr
        )
    return stats


def propagation_stats(dataset: IHRDataset) -> dict[int, PropagationStats]:
    """Per-transit statistics over the IHR transit dataset."""
    stats: dict[int, PropagationStats] = {}
    for group in dataset.transit_groups:
        for _, (rpki, irr) in zip(group.prefixes, group.statuses):
            for transit, info in group.transits.items():
                stats.setdefault(transit, PropagationStats()).add(
                    rpki, irr, info.from_customer
                )
    return stats


def is_action4_conformant(stats: OriginationStats | None, program: Program) -> bool:
    """Action 4 verdict for one AS under its program's threshold (§8.3).

    ASes that originate nothing are trivially conformant (``stats`` None
    or zero total), matching the paper's treatment of quiescent member
    ASNs.
    """
    if stats is None or stats.total == 0:
        return True
    return stats.og_conformant >= action4_threshold(program)


def is_action1_fully_conformant(stats: PropagationStats | None) -> bool:
    """Action 1 verdict: no MANRS-unconformant customer announcement
    propagated (§9.3).  ASes propagating nothing are trivially conformant.
    """
    if stats is None or stats.customer_total == 0:
        return True
    return stats.customer_unconformant == 0
