"""Prefix-origin classification against MANRS requirements (§6.1, §6.4).

The paper's conformance predicate (§6.4):

* a prefix-origin is **MANRS-conformant** when its RPKI status is Valid,
  or its IRR status is Valid or Invalid-length (the IRR has no maxLength
  attribute, so more-specific announcements of a registered block are
  accepted — §3's traffic-engineering allowance);
* it is **MANRS-unconformant** when it is RPKI Invalid, or RPKI NotFound
  *and* IRR Invalid.

A pair that is NotFound in both registries is neither: it counts against
Action 4 conformance (Formula 3's numerator excludes it) but is not
penalised by Action 1's unconformance measure (Formula 6).

The two predicates are *not* mutually exclusive — an RPKI-Invalid route
whose IRR object is Valid is conformant for Action 4 (the paper accepts
either registry) yet unconformant for Action 1 (ROV-filtering networks
drop it regardless).  The predicates feed different formulas, so the
overlap is intentional and faithful to §6.4's definitions.
"""

from __future__ import annotations

from repro.irr.validation import IRRStatus
from repro.rpki.rov import RPKIStatus

__all__ = ["is_conformant", "is_unconformant"]


def is_conformant(rpki: RPKIStatus, irr: IRRStatus) -> bool:
    """True if the prefix-origin satisfies the MANRS Action 4 criterion."""
    if rpki is RPKIStatus.VALID:
        return True
    return irr in (IRRStatus.VALID, IRRStatus.INVALID_LENGTH)


def is_unconformant(rpki: RPKIStatus, irr: IRRStatus) -> bool:
    """True if the prefix-origin is affirmatively MANRS-unconformant."""
    if rpki.is_invalid:
        return True
    return rpki is RPKIStatus.NOT_FOUND and irr is IRRStatus.INVALID_ORIGIN
