"""Conformance stability over time (§8.5, Finding 8.7).

Given a sequence of per-snapshot Action 4 verdicts for each AS, classify
every AS as consistently conformant, consistently unconformant, or
flapping, and report the counts the paper gives for its 12 weekly
snapshots.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Mapping, Sequence

__all__ = ["StabilityClass", "StabilityReport", "conformance_stability"]


class StabilityClass(str, Enum):
    """Per-AS stability verdict across snapshots."""

    ALWAYS_CONFORMANT = "always_conformant"
    ALWAYS_UNCONFORMANT = "always_unconformant"
    FLAPPING = "flapping"


@dataclass(frozen=True)
class StabilityReport:
    """Aggregate stability statistics over a snapshot series."""

    n_snapshots: int
    classification: dict[int, StabilityClass]

    def count(self, verdict: StabilityClass) -> int:
        """Number of ASes in one stability class."""
        return sum(1 for v in self.classification.values() if v is verdict)

    @property
    def always_conformant(self) -> int:
        """ASes conformant in every snapshot."""
        return self.count(StabilityClass.ALWAYS_CONFORMANT)

    @property
    def always_unconformant(self) -> int:
        """ASes unconformant in every snapshot."""
        return self.count(StabilityClass.ALWAYS_UNCONFORMANT)

    @property
    def flapping(self) -> int:
        """ASes whose verdict changed between snapshots."""
        return self.count(StabilityClass.FLAPPING)


def conformance_stability(
    snapshots: Sequence[Mapping[int, bool]],
) -> StabilityReport:
    """Classify ASes over a series of {asn: conformant} snapshots.

    An AS missing from some snapshots is judged over the snapshots it
    appears in (networks come and go from the routing table; the paper
    dropped one snapshot for missing data).
    """
    if not snapshots:
        raise ValueError("need at least one snapshot")
    verdicts: dict[int, list[bool]] = {}
    for snapshot in snapshots:
        for asn, conformant in snapshot.items():
            verdicts.setdefault(asn, []).append(bool(conformant))
    classification: dict[int, StabilityClass] = {}
    for asn, history in verdicts.items():
        if all(history):
            classification[asn] = StabilityClass.ALWAYS_CONFORMANT
        elif not any(history):
            classification[asn] = StabilityClass.ALWAYS_UNCONFORMANT
        else:
            classification[asn] = StabilityClass.FLAPPING
    return StabilityReport(
        n_snapshots=len(snapshots), classification=classification
    )
