"""MANRS impact analyses (§6.5): RPKI saturation and preference scores.

* **RPKI saturation** (Equations 7/8, Figure 6): the fraction of routed
  address space covered by ROAs, split MANRS vs non-MANRS.
* **MANRS preference score** (Equation 9, Figure 9): per prefix-origin,
  the sum of MANRS transit hegemonies minus the sum of non-MANRS transit
  hegemonies — positive means the announcement preferentially crosses
  MANRS networks.  Comparing the score distribution of RPKI Invalid
  announcements against Valid/NotFound ones reveals collective ROV
  effectiveness.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import kernels
from repro.bgp.table import Prefix2AS
from repro.ihr.records import IHRDataset
from repro.irr.database import IRRCollection, IRRDatabase
from repro.kernels.intervals import _sorted_contains, union_address_count
from repro.net.prefix import Prefix, aggregate_address_count
from repro.rpki.rov import ROVValidator, RPKIStatus

__all__ = [
    "SaturationReport",
    "rpki_saturation",
    "irr_coverage",
    "preference_scores",
]


@dataclass(frozen=True)
class SaturationReport:
    """RPKI saturation of one population of ASes (Equation 7/8)."""

    routed_space: int
    covered_space: int

    @property
    def saturation(self) -> float:
        """Percent of routed space covered by ROAs."""
        return (
            100.0 * self.covered_space / self.routed_space
            if self.routed_space
            else 0.0
        )


def rpki_saturation(
    prefix2as: Prefix2AS,
    rov: ROVValidator,
    member_asns: frozenset[int],
) -> tuple[SaturationReport, SaturationReport]:
    """(MANRS, non-MANRS) saturation over the routed IPv4 table."""
    if kernels.use_numpy():
        return _rpki_saturation_numpy(prefix2as, rov, member_asns)
    member_prefixes: list[Prefix] = []
    other_prefixes: list[Prefix] = []
    for asn in prefix2as.origin_asns:
        bucket = member_prefixes if asn in member_asns else other_prefixes
        bucket.extend(p for p in prefix2as.prefixes_of(asn) if p.version == 4)
    return (
        _saturation_of(member_prefixes, rov),
        _saturation_of(other_prefixes, rov),
    )


def _rpki_saturation_numpy(
    prefix2as: Prefix2AS,
    rov: ROVValidator,
    member_asns: frozenset[int],
) -> tuple[SaturationReport, SaturationReport]:
    """Columnar saturation: per-population sweeps over presorted rows.

    The routed/covered address counts are unions of integer intervals,
    so they only depend on which rows each population selects, not on
    bucket assembly order — the presorted columns plus boolean masks
    yield the exact integers of the per-prefix reference path.
    """
    cols = prefix2as.v4_columns()
    covered = rov.interval_index().covers_v4(
        cols.unique_values, cols.unique_lengths
    )[cols.unique_inverse]
    members = np.array(sorted(member_asns), dtype=np.int64)
    member_rows = _sorted_contains(members, cols.origins)
    reports = []
    for rows in (member_rows, ~member_rows):
        hit = rows & covered
        reports.append(
            SaturationReport(
                routed_space=union_address_count(
                    cols.firsts[rows], cols.lasts[rows]
                ),
                covered_space=union_address_count(
                    cols.firsts[hit], cols.lasts[hit]
                ),
            )
        )
    return reports[0], reports[1]


def _saturation_of(prefixes: list[Prefix], rov: ROVValidator) -> SaturationReport:
    covered = rov.covered_space(prefixes)
    return SaturationReport(
        routed_space=aggregate_address_count(prefixes),
        covered_space=aggregate_address_count(covered),
    )


def irr_coverage(
    prefix2as: Prefix2AS,
    irr: IRRCollection | IRRDatabase,
    member_asns: frozenset[int],
) -> tuple[SaturationReport, SaturationReport]:
    """Like :func:`rpki_saturation` but for IRR route-object coverage
    (the §8.6 comparison: 95.0% of MANRS vs 84.6% of non-MANRS space)."""
    member_prefixes: list[Prefix] = []
    other_prefixes: list[Prefix] = []
    for asn in prefix2as.origin_asns:
        bucket = member_prefixes if asn in member_asns else other_prefixes
        bucket.extend(p for p in prefix2as.prefixes_of(asn) if p.version == 4)

    def coverage_of(prefixes: list[Prefix]) -> SaturationReport:
        covered = [p for p in prefixes if irr.routes_covering(p)]
        return SaturationReport(
            routed_space=aggregate_address_count(prefixes),
            covered_space=aggregate_address_count(covered),
        )

    return coverage_of(member_prefixes), coverage_of(other_prefixes)


def preference_scores(
    dataset: IHRDataset,
    member_asns: frozenset[int],
) -> dict[str, list[float]]:
    """MANRS preference score per prefix-origin, grouped by RPKI status.

    Returns ``{"valid": [...], "not_found": [...], "invalid": [...]}`` —
    the paper folds both invalid flavours into one Figure 9 series.
    """
    scores: dict[str, list[float]] = {"valid": [], "not_found": [], "invalid": []}
    for group in dataset.transit_groups:
        member_sum = 0.0
        other_sum = 0.0
        for transit, info in group.transits.items():
            if transit in member_asns:
                member_sum += info.hegemony
            else:
                other_sum += info.hegemony
        score = member_sum - other_sum
        for _, (rpki, _irr) in zip(group.prefixes, group.statuses):
            if rpki is RPKIStatus.VALID:
                scores["valid"].append(score)
            elif rpki is RPKIStatus.NOT_FOUND:
                scores["not_found"].append(score)
            else:
                scores["invalid"].append(score)
    return scores
