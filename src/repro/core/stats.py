"""Small statistics helpers shared by the analyses (CDFs, percentiles).

The paper's figures are all empirical CDFs of per-AS percentages; these
helpers keep the experiments free of repeated numpy boilerplate and make
the test assertions readable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = ["CDF", "make_cdf"]


@dataclass(frozen=True)
class CDF:
    """An empirical CDF over a finite sample."""

    values: tuple[float, ...]  # sorted ascending

    @property
    def n(self) -> int:
        """Sample size."""
        return len(self.values)

    def fraction_at_most(self, threshold: float) -> float:
        """P(X <= threshold)."""
        if not self.values:
            return 0.0
        return float(np.searchsorted(self.values, threshold, side="right")) / self.n

    def fraction_above(self, threshold: float) -> float:
        """P(X > threshold)."""
        return 1.0 - self.fraction_at_most(threshold)

    def percentile(self, q: float) -> float:
        """The q-th percentile (0..100) of the sample."""
        if not self.values:
            raise ValueError("percentile of empty CDF")
        return float(np.percentile(np.asarray(self.values), q))

    @property
    def median(self) -> float:
        """The 50th percentile."""
        return self.percentile(50.0)

    @property
    def maximum(self) -> float:
        """Largest sample value."""
        if not self.values:
            raise ValueError("maximum of empty CDF")
        return self.values[-1]

    @property
    def mean(self) -> float:
        """Sample mean."""
        if not self.values:
            raise ValueError("mean of empty CDF")
        return float(np.mean(self.values))

    @property
    def variance(self) -> float:
        """Population variance (the §9.2 comparison statistic)."""
        if not self.values:
            raise ValueError("variance of empty CDF")
        return float(np.var(self.values))

    def series(self) -> list[tuple[float, float]]:
        """(value, cumulative fraction) points for plotting/printing."""
        return [
            (value, (index + 1) / self.n)
            for index, value in enumerate(self.values)
        ]


def make_cdf(values: Sequence[float]) -> CDF:
    """Build a CDF from unsorted samples."""
    return CDF(values=tuple(sorted(float(v) for v in values)))
