"""The fault-tolerant sweep scheduler.

Runs a :class:`~repro.sweep.spec.SweepSpec`'s jobs across a
``ProcessPoolExecutor``, with the failure envelope a long sweep needs:

* **skip** — jobs with a verified ``done`` ledger record are never
  re-run (this is what makes ``sweep resume`` cheap after a kill);
* **retry** — a failed attempt is retried up to ``spec.max_attempts``
  times with exponential backoff (``spec.backoff * 2**(attempt-1)``);
* **timeout** — each attempt runs under an in-worker SIGALRM budget
  (``spec.timeout``), with a driver-side backstop at roughly twice that
  budget for workers whose alarm cannot fire (blocked signals, a truly
  wedged interpreter) — the backstop tears the pool down and rebuilds
  it, sacrificing in-flight attempts (they count as failures and
  re-enter the retry policy);
* **crash isolation** — a worker that dies outright (the ``crash``
  fault, an OOM kill) breaks the pool; the scheduler records a failed
  attempt for every in-flight job, rebuilds the pool and carries on;
* **graceful degradation** — a job that exhausts its attempts is
  recorded as ``failed`` and the sweep *continues*; the outcome reports
  partial results rather than aborting the run.

Progress lands in :mod:`repro.obs`: a ``sweep.run`` span wrapping
``sweep.schedule``/``sweep.aggregate``, plus the counters
``sweep.jobs.{done,failed,retried,skipped}`` and a ``sweep.workers``
gauge.  Workers warm-start worlds through the PR 3 checkpoint store
(``REPRO_CACHE_DIR``), so jobs sharing a (config, scale, seed) build it
once per machine, not once per job.
"""

from __future__ import annotations

import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

from repro import config as _config
from repro import obs
from repro.config import RuntimeConfig
from repro.sweep.ledger import RunLedger
from repro.sweep.spec import Job, SweepSpec
from repro.sweep.worker import execute_job

__all__ = ["SweepOutcome", "run_sweep", "worker_pool"]

#: Extra driver-side grace on top of twice the in-worker budget before
#: the backstop declares a worker wedged and rebuilds the pool.
BACKSTOP_GRACE_SECONDS = 30.0

ProgressFn = Callable[[str], None]


@dataclass
class SweepOutcome:
    """What one ``run_sweep`` call accomplished (and what it skipped)."""

    sweep_id: str
    ledger_dir: Path
    jobs: tuple[Job, ...]
    results: dict[str, dict] = field(default_factory=dict)
    failures: dict[str, str] = field(default_factory=dict)
    skipped: tuple[str, ...] = ()
    retries: int = 0
    duration_seconds: float = 0.0

    @property
    def completed(self) -> int:
        return len(self.results)

    @property
    def ok(self) -> bool:
        """True when every job has a result (none failed)."""
        return not self.failures

    def summary(self) -> str:
        return (
            f"sweep {self.sweep_id[:12]}: {self.completed}/{len(self.jobs)} "
            f"done ({len(self.skipped)} skipped, {len(self.failures)} failed, "
            f"{self.retries} retried) in {self.duration_seconds:.1f}s"
        )


def run_sweep(
    spec: SweepSpec,
    ledger_root: str | Path,
    workers: int | None = None,
    progress: ProgressFn | None = None,
    runtime: RuntimeConfig | None = None,
) -> SweepOutcome:
    """Run (or resume) a sweep; never raises for individual job failures.

    Jobs already completed in the ledger are skipped; everything else is
    scheduled.  The returned outcome carries every available payload —
    including those of previous runs — so callers aggregate one object
    regardless of how many times the sweep was interrupted.

    ``runtime`` installs a :class:`repro.config.RuntimeConfig` for the
    driver *and* every pool worker (via a pool initializer), so an
    explicit config governs warm-start stores, kernels and shard counts
    end to end instead of relying on inherited environment variables.
    """
    with _config.use(runtime):
        jobs = spec.expand()
        workers = max(1, workers or spec.workers or obs.resolve_jobs())
        say = progress or (lambda message: None)
        started = time.perf_counter()
        with obs.span(
            "sweep.run", sweep=spec.name, jobs=len(jobs), workers=workers
        ), RunLedger.open(ledger_root, spec, jobs) as ledger:
            obs.gauge("sweep.workers", workers)
            done_payloads = ledger.completed()
            skipped = tuple(
                job.job_id for job in jobs if job.job_id in done_payloads
            )
            if skipped:
                obs.add("sweep.jobs.skipped", len(skipped))
                say(f"resuming: {len(skipped)}/{len(jobs)} jobs already done")
            pending = deque(
                (job, 1) for job in jobs if job.job_id not in done_payloads
            )
            outcome = SweepOutcome(
                sweep_id=spec.sweep_id,
                ledger_dir=ledger.directory,
                jobs=jobs,
                results=dict(done_payloads),
                skipped=skipped,
            )
            if pending:
                with obs.span("sweep.schedule", pending=len(pending)):
                    _schedule(
                        spec, pending, ledger, workers, outcome, say, runtime
                    )
        outcome.duration_seconds = time.perf_counter() - started
        return outcome


def worker_pool(
    workers: int,
    runtime: RuntimeConfig | None = None,
    mp_context=None,
) -> ProcessPoolExecutor:
    """A process pool whose workers install ``runtime`` at startup.

    Shared by the sweep scheduler and the serve build queue, so both run
    builds under the same explicit config the driver resolved (workers
    inherit environment variables anyway; the initializer makes an
    explicit ``runtime`` authoritative over them).  ``mp_context`` picks
    the start method: the serve layer passes a ``spawn`` context so that
    lazily-started workers never inherit open connection fds from the
    event-loop process (a forked worker holding a duplicate client
    socket would keep the connection from ever reaching EOF).
    """
    kwargs: dict = {"max_workers": workers}
    if mp_context is not None:
        kwargs["mp_context"] = mp_context
    if runtime is not None:
        kwargs["initializer"] = _config.set_current
        kwargs["initargs"] = (runtime,)
    return ProcessPoolExecutor(**kwargs)


def _schedule(
    spec: SweepSpec,
    pending: deque[tuple[Job, int]],
    ledger: RunLedger,
    workers: int,
    outcome: SweepOutcome,
    say: ProgressFn,
    runtime: RuntimeConfig | None = None,
) -> None:
    total = len(outcome.jobs)
    backstop = (
        spec.timeout * 2 + BACKSTOP_GRACE_SECONDS if spec.timeout > 0 else None
    )
    pool = worker_pool(workers, runtime)
    inflight: dict[Future, tuple[Job, int, float]] = {}
    try:
        while pending or inflight:
            broken = False
            while pending and len(inflight) < workers * 2:
                job, attempt = pending.popleft()
                _backoff(spec, attempt)
                try:
                    future = pool.submit(
                        execute_job, job, attempt, spec.timeout
                    )
                except BrokenProcessPool:
                    # A worker died between waits; put the job back,
                    # drain whatever finished, then rebuild the pool.
                    pending.appendleft((job, attempt))
                    broken = True
                    break
                ledger.append("start", job.job_id, attempt)
                inflight[future] = (job, attempt, time.monotonic())
            finished, _ = wait(
                inflight, timeout=1.0, return_when=FIRST_COMPLETED
            )
            for future in finished:
                job, attempt, submitted = inflight.pop(future)
                try:
                    payload = future.result()
                except BrokenProcessPool:
                    broken = True
                    _record_failure(
                        spec, ledger, pending, outcome, say, total,
                        job, attempt, "worker process died",
                        time.monotonic() - submitted,
                    )
                except Exception as error:  # noqa: BLE001 - per-job isolation
                    _record_failure(
                        spec, ledger, pending, outcome, say, total,
                        job, attempt, f"{type(error).__name__}: {error}",
                        time.monotonic() - submitted,
                    )
                else:
                    duration = time.monotonic() - submitted
                    ledger.append(
                        "done", job.job_id, attempt,
                        duration=duration, payload=payload,
                    )
                    outcome.results[job.job_id] = payload
                    outcome.failures.pop(job.job_id, None)
                    obs.add("sweep.jobs.done")
                    say(
                        f"[{len(outcome.results)}/{total}] job "
                        f"{job.job_id[:12]} done in {duration:.1f}s "
                        f"({job.scenario} scale={job.scale:g} seed={job.seed})"
                    )
            if broken or _backstop_tripped(inflight, backstop):
                pool, fresh = _rebuild_pool(
                    pool, inflight, workers, spec, ledger,
                    pending, outcome, say, total, broken, runtime,
                )
                inflight = fresh
    finally:
        pool.shutdown(wait=False, cancel_futures=True)


def _backoff(spec: SweepSpec, attempt: int) -> None:
    if attempt > 1 and spec.backoff > 0:
        time.sleep(spec.backoff * 2 ** (attempt - 2))


def _record_failure(
    spec: SweepSpec,
    ledger: RunLedger,
    pending: deque,
    outcome: SweepOutcome,
    say: ProgressFn,
    total: int,
    job: Job,
    attempt: int,
    error: str,
    duration: float,
) -> None:
    if attempt < spec.max_attempts:
        ledger.append(
            "attempt_failed", job.job_id, attempt,
            error=error, duration=duration,
        )
        pending.append((job, attempt + 1))
        outcome.retries += 1
        obs.add("sweep.jobs.retried")
        say(
            f"job {job.job_id[:12]} attempt {attempt} failed ({error}); "
            f"retrying"
        )
    else:
        ledger.append(
            "failed", job.job_id, attempt, error=error, duration=duration
        )
        outcome.failures[job.job_id] = error
        obs.add("sweep.jobs.failed")
        say(
            f"job {job.job_id[:12]} FAILED after {attempt} attempt(s): {error}"
        )


def _backstop_tripped(
    inflight: dict[Future, tuple[Job, int, float]], backstop: float | None
) -> bool:
    if backstop is None:
        return False
    now = time.monotonic()
    return any(now - submitted > backstop for _, _, submitted in inflight.values())


def _rebuild_pool(
    pool: ProcessPoolExecutor,
    inflight: dict[Future, tuple[Job, int, float]],
    workers: int,
    spec: SweepSpec,
    ledger: RunLedger,
    pending: deque,
    outcome: SweepOutcome,
    say: ProgressFn,
    total: int,
    broken: bool,
    runtime: RuntimeConfig | None = None,
) -> tuple[ProcessPoolExecutor, dict]:
    """Tear down a broken/wedged pool; fail its in-flight attempts.

    Every in-flight attempt is recorded as failed (at-least-once
    semantics: some may actually have been executing normally next to
    the crashed or wedged worker) and re-enters the retry policy.
    """
    reason = "worker process died" if broken else "driver-side backstop timeout"
    obs.add("sweep.pool.rebuilt")
    say(f"rebuilding worker pool ({reason})")
    for future, (job, attempt, submitted) in list(inflight.items()):
        if not future.done():
            future.cancel()
        _record_failure(
            spec, ledger, pending, outcome, say, total,
            job, attempt, reason, time.monotonic() - submitted,
        )
    # Kill lingering worker processes so a wedged worker cannot outlive
    # the pool that owned it; the private _processes map is the only
    # handle the executor exposes, hence the guarded access.
    try:
        for process in list(getattr(pool, "_processes", {}).values()):
            process.terminate()
    except Exception:  # noqa: BLE001 - best-effort cleanup
        pass
    pool.shutdown(wait=False, cancel_futures=True)
    return worker_pool(workers, runtime), {}
