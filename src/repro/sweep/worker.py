"""Job execution: what runs inside one sweep worker process.

:func:`run_job` is the *pure* unit of work — build or warm-start the
job's world (through the two-tier :func:`~repro.experiments.common.world_cache`,
so workers sharing a checkpoint store load shared worlds instead of
rebuilding them), run the selected experiments and return their rendered
text plus a SHA-256 per experiment.  It is the same call a standalone
``repro reproduce`` performs, which is what makes sweep payloads
byte-comparable to single runs.

:func:`execute_job` wraps ``run_job`` with the operational envelope the
scheduler needs: a per-attempt wall-clock alarm (SIGALRM, so even a job
stuck in a C loop or a sleep is interrupted) and the deterministic
fault-injection hook ``REPRO_SWEEP_FAIL_JOBS`` used by the tests to
exercise retry, timeout, crash-recovery and partial-completion paths::

    REPRO_SWEEP_FAIL_JOBS="<id-prefix>=<mode>[:<attempts>],..."

where ``mode`` is ``fail`` (raise), ``hang`` (sleep until the alarm
fires) or ``crash`` (kill the worker process outright, breaking the
pool), and ``attempts`` bounds which attempt numbers are affected
(default: all — e.g. ``deadbeef=fail:1`` fails only the first attempt,
so the retry succeeds).
"""

from __future__ import annotations

import hashlib
import os
import signal
import time
from contextlib import contextmanager
from typing import Iterator

from repro import obs
from repro.experiments.common import world_cache
from repro.experiments.registry import select
from repro.sweep.spec import Job

__all__ = [
    "FAIL_JOBS_ENV",
    "InjectedFault",
    "JobTimeout",
    "execute_job",
    "run_job",
]

#: Fault-injection knob (see the module docstring); parsed per attempt
#: inside the worker, so tests steer targeted jobs deterministically.
FAIL_JOBS_ENV = "REPRO_SWEEP_FAIL_JOBS"


class JobTimeout(Exception):
    """A job attempt exceeded its wall-clock budget."""


class InjectedFault(Exception):
    """A test-injected failure (``REPRO_SWEEP_FAIL_JOBS``)."""


def run_job(job: Job) -> dict[str, dict[str, str]]:
    """Run one job's experiments; returns ``{name: {text, sha256}}``.

    The payload text is exactly what ``repro reproduce --only <name>``
    prints for that experiment on the same (config, scale, seed) world,
    so aggregated sweep results are byte-identical to standalone runs.
    """
    with obs.span(
        "sweep.job",
        job=job.job_id[:12],
        scenario=job.scenario,
        scale=job.scale,
        seed=job.seed,
    ):
        world = world_cache(job.scale, job.seed, config=job.config())
        payload: dict[str, dict[str, str]] = {}
        for spec in select(job.experiments or None):
            with obs.span(f"sweep.experiment.{spec.name}"):
                text = spec.render(spec.run(world))
            payload[spec.name] = {
                "text": text,
                "sha256": hashlib.sha256(text.encode()).hexdigest(),
            }
    return payload


def execute_job(job: Job, attempt: int, timeout: float) -> dict:
    """Pool entry point: fault hook + alarm around :func:`run_job`."""
    with _alarm(timeout, job.job_id):
        _maybe_inject_fault(job.job_id, attempt, timeout)
        return run_job(job)


# -- per-attempt wall-clock alarm -------------------------------------------


@contextmanager
def _alarm(timeout: float, job_id: str) -> Iterator[None]:
    """Raise :class:`JobTimeout` after ``timeout`` seconds (0 = disabled).

    Uses ``SIGALRM``/``setitimer`` where available (pool workers run
    tasks on their main thread, so the handler fires in the right
    place); elsewhere the attempt runs unbudgeted and the scheduler's
    driver-side backstop is the only limit.
    """
    usable = (
        timeout > 0
        and hasattr(signal, "setitimer")
        and hasattr(signal, "SIGALRM")
    )
    if not usable:
        yield
        return

    def _on_alarm(signum, frame):  # noqa: ARG001 - signal handler shape
        raise JobTimeout(
            f"job {job_id[:12]} exceeded its {timeout:g}s budget"
        )

    previous = signal.signal(signal.SIGALRM, _on_alarm)
    signal.setitimer(signal.ITIMER_REAL, timeout)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0)
        signal.signal(signal.SIGALRM, previous)


# -- deterministic fault injection ------------------------------------------


def _maybe_inject_fault(job_id: str, attempt: int, timeout: float) -> None:
    for prefix, mode, upto in _parse_fault_spec(os.environ.get(FAIL_JOBS_ENV, "")):
        if not job_id.startswith(prefix) or attempt > upto:
            continue
        if mode == "fail":
            raise InjectedFault(
                f"injected failure for job {job_id[:12]} attempt {attempt}"
            )
        if mode == "hang":
            # Sleep well past any plausible budget; the alarm (or the
            # scheduler's backstop) is what ends this attempt.
            time.sleep(max(3600.0, timeout * 100))
            raise InjectedFault(f"hang for {job_id[:12]} was not interrupted")
        if mode == "crash":
            # Simulate a hard worker death (OOM kill, segfault): no
            # exception propagates, the process just disappears and the
            # executor reports a broken pool.
            os._exit(23)


def _parse_fault_spec(raw: str) -> list[tuple[str, str, int]]:
    """Parse ``prefix=mode[:attempts]`` entries; malformed ones ignored."""
    entries = []
    for chunk in raw.split(","):
        chunk = chunk.strip()
        if not chunk or "=" not in chunk:
            continue
        prefix, _, action = chunk.partition("=")
        mode, _, count = action.partition(":")
        if mode not in ("fail", "hang", "crash"):
            continue
        try:
            upto = int(count) if count else 1 << 30
        except ValueError:
            continue
        entries.append((prefix.strip(), mode, upto))
    return entries
