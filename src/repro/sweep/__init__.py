"""``repro.sweep``: fault-tolerant parallel sweeps with a run ledger.

The paper's claims rest on repeating the same measurement over many
snapshots and parameterisations; this package is the subsystem that
does so at scale.  Four layers, each usable on its own:

* :mod:`repro.sweep.spec` — declarative :class:`SweepSpec` grids that
  expand to :class:`Job` records with stable content-derived ids;
* :mod:`repro.sweep.worker` — the per-job unit of work (warm-started
  through the checkpoint store) plus the SIGALRM attempt budget and the
  ``REPRO_SWEEP_FAIL_JOBS`` fault-injection hook;
* :mod:`repro.sweep.ledger` — the persistent, digest-verified JSONL run
  ledger that makes ``sweep resume`` skip completed jobs after a kill;
* :mod:`repro.sweep.scheduler` — the process-pool scheduler: retry with
  backoff, per-attempt timeouts, crash isolation, partial completion;
* :mod:`repro.sweep.aggregate` — per-experiment grouping across the
  sweep axes and the ``status``/``report`` text views.

CLI: ``repro sweep run|resume|status|report <spec.json>`` and
``repro sweep list``; see the README's "Sweeps" section and
``examples/sweep_smoke.json``.
"""

from __future__ import annotations

from repro.sweep.aggregate import aggregate, render_report, render_status
from repro.sweep.ledger import RunLedger
from repro.sweep.scheduler import SweepOutcome, run_sweep, worker_pool
from repro.sweep.spec import (
    SWEEP_SCHEMA_VERSION,
    Job,
    SweepSpec,
    SweepSpecError,
    apply_overrides,
    job_id_for,
)
from repro.sweep.worker import FAIL_JOBS_ENV, run_job

__all__ = [
    "FAIL_JOBS_ENV",
    "SWEEP_SCHEMA_VERSION",
    "Job",
    "RunLedger",
    "SweepOutcome",
    "SweepSpec",
    "SweepSpecError",
    "aggregate",
    "apply_overrides",
    "job_id_for",
    "render_report",
    "render_status",
    "run_job",
    "run_sweep",
    "worker_pool",
]
