"""Declarative sweep specifications and their expansion into jobs.

A :class:`SweepSpec` names a grid of build inputs — scales, seeds,
scenario variants (dotted-path overrides of :class:`ScenarioConfig`) and
experiment subsets — plus runtime policy (workers, per-job timeout,
retry budget).  :meth:`SweepSpec.expand` takes the cartesian product of
the axes (plus any explicitly listed jobs) and yields deterministic
:class:`Job` records whose ids are content-derived: the same (overrides,
scale, seed, experiments) tuple hashes to the same id in every process,
which is what lets the run ledger recognise completed work across
restarts.

The JSON spec format (see ``examples/sweep_smoke.json``)::

    {
      "name": "demo",
      "axes": {
        "scale": [0.05, 0.1],
        "seed": [1, 2, 3],
        "scenario": [
          {"label": "baseline"},
          {"label": "no-deagg",
           "overrides": {"origination.deaggregation_probability": 0.0}}
        ],
        "experiments": [["fig5", "f83"], ["fig7"]]
      },
      "jobs": [
        {"scale": 0.2, "seed": 9, "experiments": ["tab2"]}
      ],
      "workers": 4, "timeout": 600, "max_attempts": 2, "backoff": 0.5
    }

``axes.experiments`` may be a flat list (one subset shared by every
grid job), a list of lists (an extra axis: one job per subset), or
absent (every registry experiment).  Override paths walk dataclass
attributes and string dict keys; values are coerced to the type already
at the path (ISO strings for dates, lists for tuples).  Unknown
experiment names and unresolvable override paths fail at parse time
with the valid choices listed, not inside a worker.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from datetime import date
from itertools import product
from pathlib import Path
from typing import Any, Iterable, Mapping

from repro.datasets.checkpoint import content_key
from repro.experiments.registry import select
from repro.scenario.config import ScenarioConfig

__all__ = [
    "SWEEP_SCHEMA_VERSION",
    "Job",
    "SweepSpec",
    "SweepSpecError",
    "apply_overrides",
    "job_id_for",
]

#: Bumped when job identity inputs or the ledger record layout change;
#: part of every job id and ledger manifest, so schema skew reads as
#: "different sweep", never as silently-reusable state.
SWEEP_SCHEMA_VERSION = 1


class SweepSpecError(ValueError):
    """A sweep spec (or one of its override paths) is invalid."""


# -- scenario overrides ------------------------------------------------------


def _coerce(current: Any, value: Any, path: str) -> Any:
    """Coerce a JSON-shaped override value to the type already at ``path``."""
    if isinstance(current, date) and isinstance(value, str):
        try:
            return date.fromisoformat(value)
        except ValueError as error:
            raise SweepSpecError(f"{path}: {error}") from None
    if isinstance(current, tuple) and isinstance(value, list):
        return tuple(value)
    if isinstance(current, float) and isinstance(value, int):
        return float(value)
    if current is not None and not isinstance(value, type(current)):
        if not (isinstance(current, (int, float)) and isinstance(value, (int, float))):
            raise SweepSpecError(
                f"override {path}: expected {type(current).__name__}, "
                f"got {type(value).__name__}"
            )
    return value


def _apply_one(config: ScenarioConfig, path: str, value: Any) -> None:
    """Set one dotted-path override, rebuilding frozen parents as needed."""
    parts = path.split(".")
    chain: list[Any] = [config]
    for part in parts[:-1]:
        node = chain[-1]
        if isinstance(node, dict):
            if part not in node:
                raise SweepSpecError(
                    f"override {path}: no key {part!r} "
                    f"(valid: {sorted(map(str, node))})"
                )
            chain.append(node[part])
        elif dataclasses.is_dataclass(node) and hasattr(node, part):
            chain.append(getattr(node, part))
        else:
            raise SweepSpecError(
                f"override {path}: cannot descend into {part!r} "
                f"on {type(node).__name__}"
            )
    leaf = parts[-1]
    node = chain[-1]
    if isinstance(node, dict):
        if leaf not in node:
            raise SweepSpecError(
                f"override {path}: no key {leaf!r} "
                f"(valid: {sorted(map(str, node))})"
            )
        node[leaf] = _coerce(node[leaf], value, path)
        return
    if not (dataclasses.is_dataclass(node) and hasattr(node, leaf)):
        raise SweepSpecError(
            f"override {path}: {type(node).__name__} has no field {leaf!r}"
        )
    updated = _coerce(getattr(node, leaf), value, path)
    # Frozen dataclasses (RegistrationBehavior, FilteringBehavior…) are
    # rebuilt with replace() and the new instance is written back into
    # the nearest mutable ancestor (ScenarioConfig and its sub-configs
    # are mutable, as are the dicts between them).
    while True:
        try:
            setattr(node, leaf, updated)
            return
        except dataclasses.FrozenInstanceError:
            updated = dataclasses.replace(node, **{leaf: updated})
            chain.pop()
            leaf = parts[len(chain) - 1]
            node = chain[-1]
            if isinstance(node, dict):
                node[leaf] = updated
                return


def apply_overrides(
    overrides: Mapping[str, Any], config: ScenarioConfig | None = None
) -> ScenarioConfig:
    """A :class:`ScenarioConfig` with dotted-path ``overrides`` applied.

    Paths are applied in sorted order (deterministic when one path
    prefixes another); a fresh default config is used when ``config`` is
    None.  Invalid paths raise :class:`SweepSpecError` naming the valid
    siblings.
    """
    config = config if config is not None else ScenarioConfig()
    for path in sorted(overrides):
        _apply_one(config, path, overrides[path])
    return config


# -- jobs --------------------------------------------------------------------


def job_id_for(
    overrides: Mapping[str, Any],
    scale: float,
    seed: int,
    experiments: tuple[str, ...],
) -> str:
    """The stable content-derived id of one job.

    Derived from the build inputs only — the scenario *label* is
    presentation, so relabelling a variant does not orphan its ledger
    records.
    """
    return content_key(
        {
            "schema_version": SWEEP_SCHEMA_VERSION,
            "overrides": {str(k): overrides[k] for k in sorted(overrides)},
            "scale": scale,
            "seed": seed,
            "experiments": list(experiments),
        },
        kind="sweep-job",
    )


@dataclass(frozen=True)
class Job:
    """One (scenario overrides, scale, seed, experiment subset) work unit."""

    job_id: str
    scenario: str
    overrides: Mapping[str, Any] = field(repr=False)
    scale: float = 1.0
    seed: int = 0
    experiments: tuple[str, ...] = ()

    def config(self) -> ScenarioConfig | None:
        """The job's scenario config; None means the shared default."""
        if not self.overrides:
            return None
        return apply_overrides(self.overrides)

    def axes(self) -> dict[str, Any]:
        """The job's coordinates, as the ledger and reports record them."""
        return {
            "scenario": self.scenario,
            "scale": self.scale,
            "seed": self.seed,
            "experiments": list(self.experiments),
        }


def _make_job(
    scenario_label: str,
    overrides: Mapping[str, Any],
    scale: float,
    seed: int,
    experiments: tuple[str, ...],
) -> Job:
    return Job(
        job_id=job_id_for(overrides, scale, seed, experiments),
        scenario=scenario_label,
        overrides=dict(overrides),
        scale=scale,
        seed=seed,
        experiments=experiments,
    )


# -- the spec ----------------------------------------------------------------


@dataclass
class SweepSpec:
    """A declarative sweep: grid axes, explicit jobs, runtime policy."""

    name: str = "sweep"
    scales: tuple[float, ...] = (1.0,)
    seeds: tuple[int, ...] = (0,)
    #: ``(label, overrides)`` pairs; the default is one baseline variant.
    scenarios: tuple[tuple[str, Mapping[str, Any]], ...] = (("baseline", {}),)
    #: One experiment subset per grid job; ``()`` inside means "all".
    experiment_sets: tuple[tuple[str, ...], ...] = ((),)
    #: Explicit extra jobs outside the grid.
    extra: tuple[Job, ...] = ()
    workers: int | None = None
    #: Per-attempt wall-clock budget in seconds (0 disables the alarm).
    timeout: float = 600.0
    #: Attempts per job (1 = no retries).
    max_attempts: int = 2
    #: Base retry delay; attempt ``n`` waits ``backoff * 2**(n-1)``.
    backoff: float = 0.25

    def __post_init__(self) -> None:
        if not self.scales or not self.seeds or not self.scenarios:
            raise SweepSpecError("axes must be non-empty")
        if self.max_attempts < 1:
            raise SweepSpecError("max_attempts must be >= 1")
        for label, overrides in self.scenarios:
            apply_overrides(overrides)  # validate paths at parse time
            del label
        for names in self.experiment_sets:
            _validate_experiments(names)
        for job in self.extra:
            _validate_experiments(job.experiments)
            apply_overrides(job.overrides)

    @property
    def sweep_id(self) -> str:
        """Content id of the *work*, stable across runtime-policy changes.

        Workers/timeout/retry knobs are deliberately excluded: resuming
        with more workers or a longer timeout must find the same ledger.
        """
        return content_key(
            {
                "schema_version": SWEEP_SCHEMA_VERSION,
                "jobs": sorted(job.job_id for job in self.expand()),
            },
            kind="sweep",
        )

    def expand(self) -> tuple[Job, ...]:
        """All jobs, grid order (scenario × scale × seed × experiments)."""
        jobs: dict[str, Job] = {}
        for (label, overrides), scale, seed, names in product(
            self.scenarios, self.scales, self.seeds, self.experiment_sets
        ):
            job = _make_job(label, overrides, scale, seed, names)
            jobs.setdefault(job.job_id, job)
        for job in self.extra:
            jobs.setdefault(job.job_id, job)
        return tuple(jobs.values())

    # -- parsing -------------------------------------------------------------

    @classmethod
    def from_mapping(cls, data: Mapping[str, Any]) -> SweepSpec:
        """Parse the JSON-shaped spec mapping (see the module docstring)."""
        if not isinstance(data, Mapping):
            raise SweepSpecError("spec must be a JSON object")
        known = {
            "name", "axes", "jobs", "workers", "timeout",
            "max_attempts", "backoff",
        }
        unknown = set(data) - known
        if unknown:
            raise SweepSpecError(
                f"unknown spec key(s) {sorted(unknown)}; "
                f"choose from {sorted(known)}"
            )
        axes = data.get("axes", {})
        scenarios = []
        for i, entry in enumerate(axes.get("scenario", [{}])):
            overrides = dict(entry.get("overrides", {}))
            label = entry.get("label") or (f"variant{i}" if overrides else "baseline")
            scenarios.append((label, overrides))
        extra = tuple(
            _make_job(
                entry.get("scenario", "explicit"),
                dict(entry.get("overrides", {})),
                float(entry.get("scale", 1.0)),
                int(entry.get("seed", 0)),
                _experiment_tuple(entry.get("experiments", [])),
            )
            for entry in data.get("jobs", [])
        )
        try:
            return cls(
                name=str(data.get("name", "sweep")),
                scales=tuple(float(s) for s in axes.get("scale", [1.0])),
                seeds=tuple(int(s) for s in axes.get("seed", [0])),
                scenarios=tuple(scenarios),
                experiment_sets=_experiment_sets(axes.get("experiments")),
                extra=extra,
                workers=data.get("workers"),
                timeout=float(data.get("timeout", 600.0)),
                max_attempts=int(data.get("max_attempts", 2)),
                backoff=float(data.get("backoff", 0.25)),
            )
        except (TypeError, ValueError) as error:
            if isinstance(error, SweepSpecError):
                raise
            raise SweepSpecError(str(error)) from None

    @classmethod
    def from_file(cls, path: str | Path) -> SweepSpec:
        """Load a spec from a JSON file."""
        try:
            data = json.loads(Path(path).read_text())
        except OSError as error:
            raise SweepSpecError(f"cannot read spec {path}: {error}") from None
        except ValueError as error:
            raise SweepSpecError(f"spec {path} is not valid JSON: {error}") from None
        return cls.from_mapping(data)


def _experiment_tuple(names: Iterable[str]) -> tuple[str, ...]:
    return tuple(str(name) for name in names)


def _experiment_sets(raw: Any) -> tuple[tuple[str, ...], ...]:
    if raw is None:
        return ((),)
    if not isinstance(raw, list):
        raise SweepSpecError("axes.experiments must be a list")
    if all(isinstance(item, list) for item in raw):
        return tuple(_experiment_tuple(item) for item in raw) or ((),)
    if any(isinstance(item, list) for item in raw):
        raise SweepSpecError(
            "axes.experiments mixes names and lists; use one or the other"
        )
    return (_experiment_tuple(raw),)


def _validate_experiments(names: tuple[str, ...]) -> None:
    try:
        select(names or None)
    except KeyError as error:
        raise SweepSpecError(error.args[0]) from None
