"""Aggregation and rendering of sweep results.

A sweep's raw output is one payload per job — rendered experiment text
plus a SHA-256 per experiment.  :func:`aggregate` regroups that by
*experiment* across the sweep axes, which is the question a sweep
answers: for each paper artefact, how do its results spread across
seeds, scales and scenario variants?  Two jobs that agree byte-for-byte
share a digest, so "is fig5 stable across 8 seeds?" reads directly off
``distinct_results`` without diffing text.

``render_status`` and ``render_report`` are the text views behind
``repro sweep status`` / ``repro sweep report``.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable, Mapping

from repro import obs
from repro.sweep.ledger import JobState
from repro.sweep.spec import Job

__all__ = ["aggregate", "render_report", "render_status"]


def aggregate(
    jobs: Iterable[Job], results: Mapping[str, Mapping[str, Mapping[str, str]]]
) -> dict:
    """Group per-job payloads by experiment across the sweep axes.

    Returns a JSON-shaped mapping::

        {"experiments": {name: {"jobs": [...], "groups": {...},
                                "distinct_results": N}},
         "missing": [job ids with no payload]}

    ``groups`` keys are ``"<scenario>@scale=<scale>"`` — the axes the
    paper varies *deliberately* — and each group records the seeds it
    covers plus the distinct digests across them (1 means seed-stable).
    """
    with obs.span("sweep.aggregate"):
        experiments: dict[str, dict] = {}
        missing = []
        for job in jobs:
            payload = results.get(job.job_id)
            if payload is None:
                missing.append(job.job_id)
                continue
            for name, cell in payload.items():
                entry = experiments.setdefault(
                    name, {"jobs": [], "groups": {}, "distinct_results": 0}
                )
                entry["jobs"].append(
                    {
                        "job_id": job.job_id,
                        "scenario": job.scenario,
                        "scale": job.scale,
                        "seed": job.seed,
                        "sha256": cell["sha256"],
                    }
                )
        for entry in experiments.values():
            groups: dict[str, dict] = {}
            for row in entry["jobs"]:
                key = f"{row['scenario']}@scale={row['scale']:g}"
                group = groups.setdefault(
                    key, {"seeds": [], "digests": defaultdict(list)}
                )
                group["seeds"].append(row["seed"])
                group["digests"][row["sha256"]].append(row["seed"])
            entry["groups"] = {
                key: {
                    "seeds": sorted(group["seeds"]),
                    "distinct": len(group["digests"]),
                    "digests": {
                        digest[:12]: sorted(seeds)
                        for digest, seeds in sorted(group["digests"].items())
                    },
                }
                for key, group in sorted(groups.items())
            }
            entry["distinct_results"] = len(
                {row["sha256"] for row in entry["jobs"]}
            )
        return {"experiments": experiments, "missing": sorted(missing)}


def render_report(aggregated: dict) -> str:
    """The ``sweep report`` text: one block per experiment, axis groups."""
    lines = ["Sweep report", "============"]
    if not aggregated["experiments"]:
        lines.append("(no completed jobs)")
    for name, entry in aggregated["experiments"].items():
        lines.append("")
        lines.append(
            f"{name}: {len(entry['jobs'])} job(s), "
            f"{entry['distinct_results']} distinct result(s)"
        )
        for key, group in entry["groups"].items():
            seeds = ",".join(str(seed) for seed in group["seeds"])
            stability = (
                "seed-stable"
                if group["distinct"] == 1
                else f"{group['distinct']} variants across seeds"
            )
            lines.append(f"  {key}  seeds [{seeds}]  {stability}")
            if group["distinct"] > 1:
                for digest, digest_seeds in group["digests"].items():
                    seed_list = ",".join(str(s) for s in digest_seeds)
                    lines.append(f"    {digest}  seeds [{seed_list}]")
    if aggregated["missing"]:
        lines.append("")
        lines.append(
            f"missing: {len(aggregated['missing'])} job(s) without results"
        )
        for job_id in aggregated["missing"]:
            lines.append(f"  {job_id[:12]}")
    return "\n".join(lines)


def render_status(
    jobs: Iterable[Job], states: Mapping[str, JobState]
) -> str:
    """The ``sweep status`` text: one line per job plus a tally."""
    jobs = list(jobs)
    lines = []
    tally = {"done": 0, "failed": 0, "pending": 0}
    for job in jobs:
        state = states.get(job.job_id)
        status = state.status if state else "pending"
        tally[status if status in tally else "pending"] += 1
        experiments = ",".join(job.experiments) or "all"
        detail = ""
        if state and state.attempts > 1:
            detail += f"  attempts={state.attempts}"
        if state and state.last_error:
            detail += f"  error={state.last_error}"
        lines.append(
            f"{job.job_id[:12]}  {status:<7}  {job.scenario} "
            f"scale={job.scale:g} seed={job.seed} [{experiments}]{detail}"
        )
    lines.append(
        f"-- {tally['done']} done, {tally['failed']} failed, "
        f"{tally['pending']} pending of {len(jobs)} job(s)"
    )
    return "\n".join(lines)
