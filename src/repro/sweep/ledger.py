"""The persistent run ledger: append-only JSONL + manifest per sweep.

Every sweep writes its state under ``<ledger root>/<sweep_id>/``:

* ``MANIFEST.json`` — schema version, sweep id/name, creation time and
  the expanded job table (id + axes), so ``sweep status`` can describe
  a ledger without re-expanding the spec;
* ``ledger.jsonl`` — one self-digested record per event (``start``,
  ``done``, ``attempt_failed``, ``failed``) carrying the attempt
  number, duration, error text and — for ``done`` — the full result
  payload.

The digest discipline matches :mod:`repro.datasets.checkpoint`: each
line embeds ``sha256(canonical(rest of record))``, so a reader detects
torn writes (a kill mid-append), hand-edits and truncation garbage and
simply drops those lines — at-least-once execution plus idempotent,
content-derived job ids make replaying a dropped record safe.  Corrupt
lines are counted under ``sweep.ledger.corrupt`` in :mod:`repro.obs`.

Execution is *at least once*: a job whose ``done`` record was lost is
re-run on resume, and re-running is harmless because payloads are pure
functions of the job's content id (the world build is deterministic per
(config, scale, seed)).  ``sweep resume`` therefore only needs
:meth:`RunLedger.completed` to know what to skip.
"""

from __future__ import annotations

import hashlib
import json
import logging
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterable, Mapping

from repro import obs
from repro.sweep.spec import SWEEP_SCHEMA_VERSION, Job, SweepSpec

__all__ = ["JobState", "RunLedger", "LEDGER_FILE", "MANIFEST_FILE"]

log = logging.getLogger(__name__)

LEDGER_FILE = "ledger.jsonl"
MANIFEST_FILE = "MANIFEST.json"


def _line_digest(record: Mapping[str, Any]) -> str:
    body = json.dumps(record, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(body.encode()).hexdigest()


@dataclass
class JobState:
    """What the ledger knows about one job."""

    job_id: str
    status: str = "pending"  # pending | running | done | failed
    attempts: int = 0
    last_error: str | None = None
    total_seconds: float = 0.0
    payload: dict | None = None


class RunLedger:
    """Append-only, digest-verified event log for one sweep."""

    def __init__(self, directory: str | Path):
        self.directory = Path(directory)
        self._handle = None

    @classmethod
    def open(
        cls, root: str | Path, spec: SweepSpec, jobs: Iterable[Job]
    ) -> "RunLedger":
        """Open (creating if needed) the ledger for ``spec`` under ``root``."""
        jobs = list(jobs)
        ledger = cls(Path(root) / spec.sweep_id)
        ledger.directory.mkdir(parents=True, exist_ok=True)
        manifest_path = ledger.directory / MANIFEST_FILE
        if manifest_path.is_file():
            try:
                manifest = json.loads(manifest_path.read_text())
            except ValueError:
                manifest = {}
            if manifest.get("sweep_id") not in (None, spec.sweep_id) or (
                manifest.get("schema_version") not in (None, SWEEP_SCHEMA_VERSION)
            ):
                raise ValueError(
                    f"ledger at {ledger.directory} belongs to another sweep "
                    f"or schema (manifest: {manifest.get('sweep_id', '?')[:12]})"
                )
        else:
            manifest_path.write_text(
                json.dumps(
                    {
                        "schema_version": SWEEP_SCHEMA_VERSION,
                        "sweep_id": spec.sweep_id,
                        "name": spec.name,
                        "created": time.time(),
                        "n_jobs": len(jobs),
                        "jobs": [
                            {"job_id": job.job_id, **job.axes()} for job in jobs
                        ],
                    },
                    indent=1,
                    sort_keys=True,
                )
            )
        return ledger

    # -- writing -------------------------------------------------------------

    def append(self, event: str, job_id: str, attempt: int, **fields: Any) -> None:
        """Append one event record (flushed immediately, digest embedded)."""
        record = {
            "event": event,
            "job_id": job_id,
            "attempt": attempt,
            "ts": time.time(),
            **{k: v for k, v in fields.items() if v is not None},
        }
        record["sha256"] = _line_digest(record)
        if self._handle is None:
            self._handle = (self.directory / LEDGER_FILE).open(
                "a", encoding="utf-8"
            )
        self._handle.write(json.dumps(record, sort_keys=True) + "\n")
        self._handle.flush()

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "RunLedger":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- reading -------------------------------------------------------------

    def records(self) -> list[dict]:
        """All verifiable records, in write order; corrupt lines dropped."""
        path = self.directory / LEDGER_FILE
        if not path.is_file():
            return []
        records = []
        corrupt = 0
        with path.open(encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                    expected = record.pop("sha256")
                except (ValueError, KeyError, TypeError, AttributeError):
                    corrupt += 1
                    continue
                if not isinstance(record, dict) or _line_digest(record) != expected:
                    corrupt += 1
                    continue
                records.append(record)
        if corrupt:
            log.warning(
                "ledger %s: dropped %d corrupt line(s); the affected jobs "
                "will re-run on resume",
                self.directory,
                corrupt,
            )
            obs.add("sweep.ledger.corrupt", corrupt)
        return records

    def job_states(self) -> dict[str, JobState]:
        """Fold the event log into one state per job id."""
        states: dict[str, JobState] = {}
        for record in self.records():
            job_id = record.get("job_id")
            if not isinstance(job_id, str):
                continue
            state = states.setdefault(job_id, JobState(job_id))
            event = record.get("event")
            if event == "start":
                state.status = "running"
                state.attempts = max(state.attempts, record.get("attempt", 0))
            elif event == "done":
                state.status = "done"
                state.payload = record.get("payload")
                state.last_error = None
                state.total_seconds += record.get("duration", 0.0)
            elif event in ("attempt_failed", "failed"):
                if event == "failed" or state.status != "done":
                    state.status = (
                        "failed" if event == "failed" else state.status
                    )
                state.last_error = record.get("error")
                state.total_seconds += record.get("duration", 0.0)
        for state in states.values():
            if state.status == "running":
                # A start without a terminal record: the process died
                # mid-attempt.  Resume treats it as pending.
                state.status = "pending"
        return states

    def completed(self) -> dict[str, dict]:
        """Payloads of every job with a verified ``done`` record."""
        return {
            job_id: state.payload
            for job_id, state in self.job_states().items()
            if state.status == "done" and state.payload is not None
        }

    def manifest(self) -> dict:
        """The sweep manifest (empty mapping when unreadable)."""
        path = self.directory / MANIFEST_FILE
        try:
            manifest = json.loads(path.read_text())
        except (OSError, ValueError):
            return {}
        return manifest if isinstance(manifest, dict) else {}
