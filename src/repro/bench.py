"""``repro bench``: the benchmark trajectory as a queryable ledger.

``benchmarks/run.py`` measures; this module *remembers*.  Each recorded
run lands as one self-digested JSONL record in ``<cache_dir>/bench/`` —
the same append-only, digest-verified format :mod:`repro.sweep.ledger`
uses for sweep events — so the ``BENCH_pr*.json`` trajectory becomes a
single file the CLI can list, baseline and diff without scraping the
repository root for loose JSON files.

Verbs (``repro bench ...``)::

    run       run benchmarks/run.py (or ingest --from-json) and record it
    list      print the recorded runs, newest last, baseline starred
    baseline  mark a recorded run as the comparison baseline
    compare   diff a run against the baseline (exit 3 on regression)
    trend     per-metric best-of-run series across the recorded runs
    clean     drop all but the N most recent runs

:func:`compare_payloads` is the regression gate shared with
``benchmarks/run.py --compare`` — it lives here so the CLI and the
benchmark runner apply identical rules.
"""

from __future__ import annotations

import json
import logging
import os
import shlex
import subprocess
import sys
import time
from pathlib import Path
from typing import Any

from repro.sweep.ledger import _line_digest

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "BenchLedger",
    "compare_payloads",
    "split_compare_problems",
    "main",
]

log = logging.getLogger(__name__)

BENCH_SCHEMA_VERSION = 1

LEDGER_FILE = "ledger.jsonl"

#: ``benchmarks/run.py`` relative to the repository root (this module
#: lives at ``src/repro/bench.py``).
_RUNNER = Path(__file__).resolve().parent.parent.parent / "benchmarks" / "run.py"


def split_compare_problems(
    current: dict, baseline: dict, threshold: float
) -> tuple[list[str], list[str]]:
    """``(digest_problems, timing_problems)`` versus a baseline payload.

    The two classes deserve different gates: digest drift is a
    *correctness* signal (the same (scale, seed) built a different
    world, or a warm path diverged from its cold rebuild) and must block
    CI, while timing ratios on small shared runners carry enough
    scheduler noise that they should only ever warn there.  Callers
    wanting the historical single-list behaviour use
    :func:`compare_payloads`.
    """
    digest_problems: list[str] = []
    timing_problems: list[str] = []
    base_benchmarks = baseline.get("benchmarks", {})
    for name, stats in current.get("benchmarks", {}).items():
        base = base_benchmarks.get(name)
        if not base:
            continue
        # Compare best-of-rounds, not the mean: on small shared runners
        # the min is far less sensitive to scheduler noise.
        base_time = base.get("min", base.get("mean", 0))
        time_now = stats.get("min", stats.get("mean", 0))
        if base_time <= 0:
            continue
        ratio = time_now / base_time
        if ratio > 1.0 + threshold:
            timing_problems.append(
                f"{name}: {time_now:.3f}s is {ratio:.2f}x baseline "
                f"{base_time:.3f}s (limit {1.0 + threshold:.2f}x)"
            )
    warm = current.get("warm_start")
    if warm is not None and not warm.get("digest_equal", True):
        digest_problems.append("warm_start: cold/warm digest drift")
    current_rows = {
        (row["scale"], row["seed"]): row
        for row in current.get("scale_sweep", [])
    }
    for row in current.get("scale_sweep", []):
        if not row.get("digest_equal", True):
            digest_problems.append(
                f"scale_sweep {row['scale']}: cold/lazy/eager digest drift"
            )
    for base_row in baseline.get("scale_sweep", []):
        row = current_rows.get((base_row["scale"], base_row["seed"]))
        if row is None:
            continue
        if base_row.get("world_digest") != row.get("world_digest"):
            digest_problems.append(
                f"scale_sweep {row['scale']}: digest drifted from baseline "
                f"({base_row.get('world_digest')} -> "
                f"{row.get('world_digest')})"
            )
        # Sweep points are single runs, so allow twice the tolerance
        # before calling a regression.
        base_cold = base_row.get("cold", {}).get("seconds", 0)
        cold = row.get("cold", {}).get("seconds", 0)
        if base_cold > 0 and cold / base_cold > 1.0 + 2 * threshold:
            timing_problems.append(
                f"scale_sweep {row['scale']}: cold build {cold:.2f}s is "
                f"{cold / base_cold:.2f}x baseline {base_cold:.2f}s"
            )
    return digest_problems, timing_problems


def compare_payloads(
    current: dict, baseline: dict, threshold: float
) -> list[str]:
    """Regression problems in ``current`` relative to ``baseline``.

    Flags any shared top-level benchmark whose best-of-rounds time
    slowed by more than ``threshold`` (fractional), any digest-equality
    flag that went false, and any scale-sweep digest that drifted from
    the baseline's digest at the same (scale, seed).  Empty list = gate
    passes.  Digest drift comes first — it is the blocking class.
    """
    digest_problems, timing_problems = split_compare_problems(
        current, baseline, threshold
    )
    return digest_problems + timing_problems


class BenchLedger:
    """Append-only, digest-verified log of benchmark runs and baselines.

    Two event kinds: ``run`` (carries the full ``BENCH_<label>.json``
    payload) and ``baseline`` (marks a recorded label as the comparison
    anchor; the latest marker wins).  Records whose embedded sha256
    does not match are dropped with a warning, exactly as in the sweep
    ledger.
    """

    def __init__(self, directory: str | Path):
        self.directory = Path(directory)
        self.path = self.directory / LEDGER_FILE

    def append(self, event: str, label: str, **fields: Any) -> None:
        """Append one event record (flushed immediately, digest embedded)."""
        record: dict[str, Any] = {
            "schema_version": BENCH_SCHEMA_VERSION,
            "event": event,
            "label": label,
            "recorded": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        }
        record.update(fields)
        record["sha256"] = _line_digest(record)
        self.directory.mkdir(parents=True, exist_ok=True)
        with self.path.open("a", encoding="utf-8") as handle:
            handle.write(json.dumps(record, sort_keys=True) + "\n")
            handle.flush()

    def records(self) -> list[dict]:
        """Every verified record, oldest first; corrupt lines are dropped."""
        if not self.path.exists():
            return []
        verified: list[dict] = []
        for number, line in enumerate(
            self.path.read_text(encoding="utf-8").splitlines(), start=1
        ):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                log.warning("bench ledger line %d is not JSON; dropped", number)
                continue
            if not isinstance(record, dict):
                log.warning("bench ledger line %d is not a record; dropped", number)
                continue
            expected = record.pop("sha256", None)
            if _line_digest(record) != expected:
                log.warning("bench ledger line %d failed its digest; dropped", number)
                continue
            verified.append(record)
        return verified

    def runs(self) -> dict[str, dict]:
        """Label -> latest ``run`` record, in first-recorded order."""
        ordered: dict[str, dict] = {}
        for record in self.records():
            if record.get("event") == "run":
                ordered[record["label"]] = record
        return ordered

    def baseline_label(self) -> str | None:
        """The label the latest ``baseline`` marker points at, if any."""
        label = None
        for record in self.records():
            if record.get("event") == "baseline":
                label = record["label"]
        return label

    def clean(self, keep: int) -> list[str]:
        """Rewrite the ledger keeping the ``keep`` most recent runs.

        Baseline markers pointing at surviving labels survive too.
        Returns the labels that were dropped.
        """
        runs = self.runs()
        kept = set(list(runs)[-keep:]) if keep > 0 else set()
        dropped = [label for label in runs if label not in kept]
        survivors = [
            record
            for record in self.records()
            if record.get("label") in kept
        ]
        if not self.path.exists():
            return []
        staging = self.path.with_suffix(".jsonl.staging")
        with staging.open("w", encoding="utf-8") as handle:
            for record in survivors:
                body = dict(record)
                body["sha256"] = _line_digest(body)
                handle.write(json.dumps(body, sort_keys=True) + "\n")
        os.replace(staging, self.path)
        return dropped


def _ledger_from(args) -> BenchLedger | None:
    """The bench ledger under the selected checkpoint store, if any."""
    from repro.datasets.checkpoint import CheckpointStore, default_store

    if getattr(args, "cache_dir", None):
        store = CheckpointStore(args.cache_dir)
    else:
        store = default_store()
    if store is None:
        print(
            "repro bench: no checkpoint store; pass --cache-dir or set "
            "REPRO_CACHE_DIR",
            file=sys.stderr,
        )
        return None
    return BenchLedger(store.root / "bench")


def _bench_run(args, ledger: BenchLedger) -> int:
    if args.from_json:
        source = Path(args.from_json)
        try:
            payload = json.loads(source.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as error:
            print(f"repro bench: cannot read {source}: {error}", file=sys.stderr)
            return 2
        label = args.label or payload.get("label") or source.stem
    else:
        label = args.label or time.strftime("run-%Y%m%d-%H%M%S", time.gmtime())
        if not _RUNNER.exists():
            print(f"repro bench: {_RUNNER} not found", file=sys.stderr)
            return 2
        output_dir = ledger.directory
        output_dir.mkdir(parents=True, exist_ok=True)
        command = [
            sys.executable,
            str(_RUNNER),
            "--label",
            label,
            "--output-dir",
            str(output_dir),
        ] + shlex.split(args.args)
        code = subprocess.run(command).returncode
        if code != 0:
            print(f"repro bench: runner exited {code}", file=sys.stderr)
            return code
        payload = json.loads(
            (output_dir / f"BENCH_{label}.json").read_text(encoding="utf-8")
        )
    ledger.append("run", label, payload=payload)
    print(f"recorded {label}")
    return 0


def _bench_list(ledger: BenchLedger) -> int:
    runs = ledger.runs()
    if not runs:
        print("no recorded runs")
        return 0
    baseline = ledger.baseline_label()
    print(f"{'':2}{'label':<24} {'recorded':<22} {'rev':<10} benchmarks")
    for label, record in runs.items():
        payload = record.get("payload") or {}
        marker = "* " if label == baseline else "  "
        names = ", ".join(sorted(payload.get("benchmarks", {}))) or "-"
        print(
            f"{marker}{label:<24} {record.get('recorded', '-'):<22} "
            f"{payload.get('git_rev', '-'):<10} {names}"
        )
    return 0


def _bench_baseline(args, ledger: BenchLedger) -> int:
    runs = ledger.runs()
    label = args.label or (list(runs)[-1] if runs else None)
    if label is None:
        print("repro bench: no recorded runs to baseline", file=sys.stderr)
        return 2
    if label not in runs:
        print(f"repro bench: no recorded run {label!r}", file=sys.stderr)
        return 2
    ledger.append("baseline", label)
    print(f"baseline -> {label}")
    return 0


def _bench_compare(args, ledger: BenchLedger) -> int:
    runs = ledger.runs()
    label = args.label or (list(runs)[-1] if runs else None)
    if label is None or label not in runs:
        print(f"repro bench: no recorded run {label!r}", file=sys.stderr)
        return 2
    base_label = ledger.baseline_label()
    if base_label is None or base_label not in runs:
        print("repro bench: no baseline recorded", file=sys.stderr)
        return 2
    problems = compare_payloads(
        runs[label].get("payload") or {},
        runs[base_label].get("payload") or {},
        args.threshold,
    )
    if problems:
        print(f"{label} vs baseline {base_label}: REGRESSION", file=sys.stderr)
        for problem in problems:
            print(f"  {problem}", file=sys.stderr)
        return 3
    print(f"{label} vs baseline {base_label}: ok")
    return 0


def _bench_trend(args, ledger: BenchLedger) -> int:
    """Per-metric series over the ledger: how each benchmark moved.

    One row per benchmark name, one column per recorded run (oldest to
    newest), cells are best-of-rounds seconds.  Exit 2 when there is
    nothing to trend (no store, no verified runs) so CI wiring can tell
    "empty" from "regressed".
    """
    runs = ledger.runs()
    if args.last is not None and args.last > 0:
        runs = dict(list(runs.items())[-args.last:])
    if not runs:
        print("repro bench: no recorded runs to trend", file=sys.stderr)
        return 2
    series: dict[str, dict[str, float | None]] = {}
    for label, record in runs.items():
        payload = record.get("payload") or {}
        for name, stats in payload.get("benchmarks", {}).items():
            best = stats.get("min", stats.get("mean"))
            series.setdefault(name, {})[label] = best
    if not series:
        print(
            "repro bench: recorded runs carry no benchmark metrics",
            file=sys.stderr,
        )
        return 2
    labels = list(runs)
    if args.json:
        print(
            json.dumps(
                {
                    "labels": labels,
                    "metrics": {
                        name: [points.get(label) for label in labels]
                        for name, points in sorted(series.items())
                    },
                },
                indent=2,
            )
        )
        return 0
    width = max(len(name) for name in series)
    header = f"{'benchmark':<{width}}  " + "  ".join(
        f"{label:>12}" for label in labels
    )
    print(header)
    for name, points in sorted(series.items()):
        cells = []
        for label in labels:
            best = points.get(label)
            cells.append(f"{best:>11.3f}s" if best is not None else f"{'-':>12}")
        print(f"{name:<{width}}  " + "  ".join(cells))
    return 0


def _bench_clean(args, ledger: BenchLedger) -> int:
    dropped = ledger.clean(args.keep)
    print(f"dropped {len(dropped)} run(s)" + (": " + ", ".join(dropped) if dropped else ""))
    return 0


def main(args) -> int:
    """Entry point for ``repro bench``; returns the process exit code."""
    ledger = _ledger_from(args)
    if ledger is None:
        return 2
    if args.bench_command == "run":
        return _bench_run(args, ledger)
    if args.bench_command == "list":
        return _bench_list(ledger)
    if args.bench_command == "baseline":
        return _bench_baseline(args, ledger)
    if args.bench_command == "compare":
        return _bench_compare(args, ledger)
    if args.bench_command == "trend":
        return _bench_trend(args, ledger)
    if args.bench_command == "clean":
        return _bench_clean(args, ledger)
    raise AssertionError(f"unknown bench command {args.bench_command!r}")
