"""repro: a full reproduction of "Mind Your MANRS: Measuring the MANRS
Ecosystem" (Du et al., IMC 2022).

The package builds a synthetic but behaviourally calibrated Internet —
AS topology, BGP propagation, RPKI, IRR, route collectors, the MANRS
membership registry — and runs the paper's complete measurement
methodology over it: participation (§7), Action 4 prefix-origination
conformance (§8), Action 1 route-filtering conformance (§9), and the
MANRS impact analyses (RPKI saturation, preference scores).

Quickstart::

    from repro.scenario import build_world
    from repro.core import build_report, render_report

    world = build_world(scale=0.2, seed=42)
    print(render_report(build_report(world)))

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every table and figure.
"""

from repro.config import RuntimeConfig
from repro.errors import ReproError

__version__ = "1.0.0"

__all__ = ["ReproError", "RuntimeConfig", "__version__"]
