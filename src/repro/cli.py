"""Command-line interface: ``python -m repro <command>``.

Commands::

    report     build a world and print the ecosystem report
    reproduce  print every paper table/figure
    export     write all datasets of a world to a directory
    audit      list unconformant member organisations
    hijack     run one hijack simulation and report capture
    ready      check whether an AS meets the MANRS requirements

All commands accept ``--scale`` and ``--seed``; worlds are deterministic
per pair.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro import experiments as ex
from repro.core.report import build_report, render_report
from repro.datasets.store import export_world
from repro.scenario.build import build_world

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Mind Your MANRS' (IMC 2022)",
    )
    parser.add_argument(
        "--scale", type=float, default=0.2,
        help="world size multiplier (1.0 = paper-shaped ~10k ASes)",
    )
    parser.add_argument("--seed", type=int, default=42, help="world seed")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("report", help="print the ecosystem report")
    sub.add_parser("reproduce", help="print every paper table/figure")
    export = sub.add_parser("export", help="write datasets to a directory")
    export.add_argument("directory", help="output directory")
    sub.add_parser("audit", help="list unconformant member organisations")
    hijack = sub.add_parser("hijack", help="simulate one origin hijack")
    hijack.add_argument(
        "--sub-prefix", action="store_true",
        help="announce a more-specific instead of the exact prefix",
    )
    hijack.add_argument(
        "--protected", action="store_true",
        help="victim has a ROA (hijack becomes RPKI Invalid)",
    )
    ready = sub.add_parser(
        "ready", help="check whether an AS meets the MANRS requirements"
    )
    ready.add_argument("asn", type=int, help="AS number to evaluate")
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    world = build_world(scale=args.scale, seed=args.seed)

    if args.command == "report":
        print(render_report(build_report(world)))
    elif args.command == "reproduce":
        sections = [
            ex.fig2_growth.render(ex.fig2_growth.run(world)),
            ex.fig4_participation.render(ex.fig4_participation.run(world)),
            ex.f70_completeness.render(ex.f70_completeness.run(world)),
            ex.fig5_origination.render(ex.fig5_origination.run(world)),
            ex.f83_action4.render(ex.f83_action4.run(world)),
            ex.tab1_casestudies.render(ex.tab1_casestudies.run(world)),
            ex.f87_stability.render(ex.f87_stability.run(world)),
            ex.fig6_saturation.render(ex.fig6_saturation.run(world)),
            ex.fig7_filtering.render(ex.fig7_filtering.run(world)),
            ex.fig8_unconformant.render(ex.fig8_unconformant.run(world)),
            ex.tab2_action1.render(ex.tab2_action1.run(world)),
            ex.fig9_preference.render(ex.fig9_preference.run(world)),
        ]
        print("\n\n".join(sections))
    elif args.command == "export":
        path = export_world(world, args.directory)
        print(f"datasets written to {path}")
    elif args.command == "audit":
        _audit(world)
    elif args.command == "hijack":
        _hijack(world, sub_prefix=args.sub_prefix, protected=args.protected)
    elif args.command == "ready":
        from repro.core.readiness import check_readiness, render_readiness

        if args.asn not in world.topology:
            print(f"AS{args.asn} is not in this world", file=sys.stderr)
            return 1
        print(render_readiness(check_readiness(world, args.asn)))
    return 0


def _audit(world) -> None:
    from repro.core.conformance import (
        is_action4_conformant,
        origination_stats,
    )
    from repro.manrs.actions import Program

    stats = origination_stats(world.ihr)
    count = 0
    for participant in world.manrs.participants:
        if participant.joined > world.snapshot_date:
            continue
        if participant.program not in (Program.ISP, Program.CDN):
            continue
        bad = [
            asn
            for asn in participant.asns
            if asn in stats
            and not is_action4_conformant(stats[asn], participant.program)
        ]
        if bad:
            count += 1
            org = world.topology.get_org(participant.org_id)
            asn_text = ", ".join(
                f"AS{a} ({stats[a].og_conformant:.0f}%)" for a in bad
            )
            print(f"{org.name} [{participant.program.value}]: {asn_text}")
    print(f"-- {count} organisations unconformant to Action 4")


def _hijack(world, sub_prefix: bool, protected: bool) -> None:
    import numpy as np

    from repro.bgp.announcement import Announcement
    from repro.bgp.hijack import HijackKind, simulate_hijack
    from repro.bgp.policy import RouteClass
    from repro.topology.classify import SizeClass

    rng = np.random.default_rng(world.seed)
    stubs = [
        asn
        for asn, size in world.size_of.items()
        if size is SizeClass.SMALL and world.originations.get(asn)
    ]
    victim_asn, attacker = (int(a) for a in rng.choice(stubs, 2, replace=False))
    victim = Announcement(world.originations[victim_asn][0].prefix, victim_asn)
    outcome = simulate_hijack(
        world.engine,
        victim,
        attacker,
        world.vantage_points,
        kind=HijackKind.SUB_PREFIX if sub_prefix else HijackKind.EXACT_PREFIX,
        hijack_route_class=RouteClass(rpki_invalid=protected),
    )
    print(
        f"AS{attacker} hijacks {victim} "
        f"({outcome.kind.value}, victim {'ROA-protected' if protected else 'unprotected'}): "
        f"{100 * outcome.capture_fraction:.1f}% of vantage points captured"
    )


if __name__ == "__main__":
    sys.exit(main())
