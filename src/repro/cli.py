"""Command-line interface: ``python -m repro <command>``.

Commands::

    report     build a world and print the ecosystem report
    reproduce  print paper tables/figures (all, or --only fig5,tab2)
    export     write all datasets of a world to a directory
    audit      list unconformant member organisations
    hijack     run one hijack simulation and report capture
    ready      check whether an AS meets the MANRS requirements

All commands accept ``--scale`` and ``--seed`` — before or after the
subcommand — and worlds are deterministic per pair.  Every command also
accepts ``--trace-json PATH`` to dump the structured observability
snapshot (span tree + metrics; see :mod:`repro.obs`) after the run, and
``report``/``audit``/``ready`` take ``--json`` for machine-readable
output.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence

from repro import obs
from repro.core.report import build_report, render_report, report_as_dict
from repro.datasets.store import export_world
from repro.experiments.registry import select
from repro.scenario.build import build_world

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing and docs)."""
    # Shared options are attached twice: on the main parser with real
    # defaults, and on every subparser with SUPPRESS defaults — so
    # ``repro report --scale 0.5`` works exactly like ``repro --scale
    # 0.5 report`` (the subparser only writes the attribute when the
    # flag actually appears after the subcommand).
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument(
        "--scale", type=float, default=argparse.SUPPRESS,
        help="world size multiplier (1.0 = paper-shaped ~10k ASes)",
    )
    common.add_argument(
        "--seed", type=int, default=argparse.SUPPRESS, help="world seed"
    )
    common.add_argument(
        "--trace-json", metavar="PATH", default=argparse.SUPPRESS,
        help="write the observability snapshot (spans + metrics) to PATH",
    )

    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Mind Your MANRS' (IMC 2022)",
    )
    parser.add_argument(
        "--scale", type=float, default=0.2,
        help="world size multiplier (1.0 = paper-shaped ~10k ASes)",
    )
    parser.add_argument("--seed", type=int, default=42, help="world seed")
    parser.add_argument(
        "--trace-json", metavar="PATH", default=None,
        help="write the observability snapshot (spans + metrics) to PATH",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    report = sub.add_parser(
        "report", parents=[common], help="print the ecosystem report"
    )
    report.add_argument(
        "--json", action="store_true", help="emit the report as JSON"
    )
    reproduce = sub.add_parser(
        "reproduce", parents=[common],
        help="print paper tables/figures (all by default)",
    )
    reproduce.add_argument(
        "--only", metavar="NAMES", default=None,
        help="comma-separated experiment names (e.g. fig5,tab2)",
    )
    export = sub.add_parser(
        "export", parents=[common], help="write datasets to a directory"
    )
    export.add_argument("directory", help="output directory")
    audit = sub.add_parser(
        "audit", parents=[common],
        help="list unconformant member organisations",
    )
    audit.add_argument(
        "--json", action="store_true", help="emit the audit as JSON"
    )
    hijack = sub.add_parser(
        "hijack", parents=[common], help="simulate one origin hijack"
    )
    hijack.add_argument(
        "--sub-prefix", action="store_true",
        help="announce a more-specific instead of the exact prefix",
    )
    hijack.add_argument(
        "--protected", action="store_true",
        help="victim has a ROA (hijack becomes RPKI Invalid)",
    )
    ready = sub.add_parser(
        "ready", parents=[common],
        help="check whether an AS meets the MANRS requirements",
    )
    ready.add_argument("asn", type=int, help="AS number to evaluate")
    ready.add_argument(
        "--json", action="store_true", help="emit the readiness check as JSON"
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    try:
        code = _dispatch(args)
    finally:
        if args.trace_json:
            obs.write_json(args.trace_json)
    return code


def _dispatch(args: argparse.Namespace) -> int:
    if args.command == "reproduce":
        try:
            specs = select(args.only)
        except KeyError as error:
            print(error.args[0], file=sys.stderr)
            return 2
    with obs.span(f"cli.{args.command}", scale=args.scale, seed=args.seed):
        with obs.span("cli.build_world"):
            world = build_world(scale=args.scale, seed=args.seed)

        if args.command == "report":
            report = build_report(world)
            if args.json:
                print(json.dumps(report_as_dict(report), indent=2))
            else:
                print(render_report(report))
        elif args.command == "reproduce":
            sections = []
            for spec in specs:
                with obs.span(f"experiment.{spec.name}", title=spec.title):
                    sections.append(spec.render(spec.run(world)))
            print("\n\n".join(sections))
        elif args.command == "export":
            path = export_world(world, args.directory)
            print(f"datasets written to {path}")
        elif args.command == "audit":
            _audit(world, as_json=args.json)
        elif args.command == "hijack":
            _hijack(world, sub_prefix=args.sub_prefix, protected=args.protected)
        elif args.command == "ready":
            from repro.core.readiness import (
                check_readiness,
                readiness_as_dict,
                render_readiness,
            )

            if args.asn not in world.topology:
                print(f"AS{args.asn} is not in this world", file=sys.stderr)
                return 1
            readiness = check_readiness(world, args.asn)
            if args.json:
                print(json.dumps(readiness_as_dict(readiness), indent=2))
            else:
                print(render_readiness(readiness))
    return 0


def _audit(world, as_json: bool = False) -> None:
    from repro.core.conformance import (
        is_action4_conformant,
        origination_stats,
    )
    from repro.manrs.actions import Program

    stats = origination_stats(world.ihr)
    rows = []
    for participant in world.manrs.participants:
        if participant.joined > world.snapshot_date:
            continue
        if participant.program not in (Program.ISP, Program.CDN):
            continue
        bad = [
            asn
            for asn in participant.asns
            if asn in stats
            and not is_action4_conformant(stats[asn], participant.program)
        ]
        if bad:
            org = world.topology.get_org(participant.org_id)
            rows.append(
                {
                    "org": org.name,
                    "program": participant.program.value,
                    "asns": [
                        {"asn": a, "og_conformant_pct": stats[a].og_conformant}
                        for a in bad
                    ],
                }
            )
    if as_json:
        print(json.dumps({"unconformant_orgs": rows}, indent=2))
        return
    for row in rows:
        asn_text = ", ".join(
            f"AS{entry['asn']} ({entry['og_conformant_pct']:.0f}%)"
            for entry in row["asns"]
        )
        print(f"{row['org']} [{row['program']}]: {asn_text}")
    print(f"-- {len(rows)} organisations unconformant to Action 4")


def _hijack(world, sub_prefix: bool, protected: bool) -> None:
    import numpy as np

    from repro.bgp.announcement import Announcement
    from repro.bgp.hijack import HijackKind, simulate_hijack
    from repro.bgp.policy import RouteClass
    from repro.topology.classify import SizeClass

    rng = np.random.default_rng(world.seed)
    stubs = [
        asn
        for asn, size in world.size_of.items()
        if size is SizeClass.SMALL and world.originations.get(asn)
    ]
    victim_asn, attacker = (int(a) for a in rng.choice(stubs, 2, replace=False))
    victim = Announcement(world.originations[victim_asn][0].prefix, victim_asn)
    outcome = simulate_hijack(
        world.engine,
        victim,
        attacker,
        world.vantage_points,
        kind=HijackKind.SUB_PREFIX if sub_prefix else HijackKind.EXACT_PREFIX,
        hijack_route_class=RouteClass(rpki_invalid=protected),
    )
    print(
        f"AS{attacker} hijacks {victim} "
        f"({outcome.kind.value}, victim {'ROA-protected' if protected else 'unprotected'}): "
        f"{100 * outcome.capture_fraction:.1f}% of vantage points captured"
    )


if __name__ == "__main__":
    sys.exit(main())
