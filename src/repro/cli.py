"""Command-line interface: ``python -m repro <command>``.

Commands::

    report     build a world and print the ecosystem report
    reproduce  print paper tables/figures (all, or --only fig5,tab2)
    export     write all datasets of a world to a directory
    audit      list unconformant member organisations
    hijack     run one hijack simulation and report capture
    ready      check whether an AS meets the MANRS requirements
    cache      manage the checkpoint store (list, verify, prune, warm)
    sweep      orchestrate job grids (run, resume, status, report, list)
    serve      run the measurement service (async HTTP query API)
    replay     replay a synthetic event stream through the live world and
               verify each checkpoint digest-equals a cold rebuild
    bench      manage the benchmark ledger (run, list, baseline, compare,
               trend, clean)

``repro reproduce --list`` and ``repro sweep list`` print the
experiment registry table (name, title, paper ref) without building a
world.  ``repro sweep run SPEC.json`` expands a declarative grid into
jobs, runs them across worker processes with retry/timeout/crash
isolation, and records everything in a persistent ledger under
``<cache dir>/sweeps/<sweep id>``; ``sweep resume`` re-runs only the
jobs without a verified result (see the README's "Sweeps" section).

All commands accept ``--scale`` and ``--seed`` — before or after the
subcommand — and worlds are deterministic per pair.  Every command also
accepts ``--trace-json PATH`` to dump the structured observability
snapshot (span tree + metrics; see :mod:`repro.obs`) after the run, and
``report``/``audit``/``ready`` take ``--json`` for machine-readable
output.

``--cache-dir PATH`` (or the ``REPRO_CACHE_DIR`` environment variable)
enables the content-addressed checkpoint store: world-building commands
warm-start from a stored entry when one exists for (config, scale,
seed), and save a cold build back for the next run.  Corrupt or stale
entries are discarded with a warning and rebuilt — using the cache never
changes results, only build time.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence

from repro import obs
from repro.core.report import build_report, render_report, report_as_dict
from repro.datasets.checkpoint import CheckpointStore, default_store
from repro.datasets.store import export_world
from repro.experiments.registry import registry_table, select
from repro.scenario.build import build_world
from repro.scenario.config import ScenarioConfig

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing and docs)."""
    # Shared options are attached twice: on the main parser with real
    # defaults, and on every subparser with SUPPRESS defaults — so
    # ``repro report --scale 0.5`` works exactly like ``repro --scale
    # 0.5 report`` (the subparser only writes the attribute when the
    # flag actually appears after the subcommand).
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument(
        "--scale", type=float, default=argparse.SUPPRESS,
        help="world size multiplier (1.0 = paper-shaped ~10k ASes)",
    )
    common.add_argument(
        "--seed", type=int, default=argparse.SUPPRESS, help="world seed"
    )
    common.add_argument(
        "--trace-json", metavar="PATH", default=argparse.SUPPRESS,
        help="write the observability snapshot (spans + metrics) to PATH",
    )
    common.add_argument(
        "--cache-dir", metavar="PATH", default=argparse.SUPPRESS,
        help="checkpoint store directory (default: $REPRO_CACHE_DIR)",
    )

    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Mind Your MANRS' (IMC 2022)",
    )
    parser.add_argument(
        "--scale", type=float, default=0.2,
        help="world size multiplier (1.0 = paper-shaped ~10k ASes)",
    )
    parser.add_argument("--seed", type=int, default=42, help="world seed")
    parser.add_argument(
        "--trace-json", metavar="PATH", default=None,
        help="write the observability snapshot (spans + metrics) to PATH",
    )
    parser.add_argument(
        "--cache-dir", metavar="PATH", default=None,
        help="checkpoint store directory (default: $REPRO_CACHE_DIR)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    report = sub.add_parser(
        "report", parents=[common], help="print the ecosystem report"
    )
    report.add_argument(
        "--json", action="store_true", help="emit the report as JSON"
    )
    reproduce = sub.add_parser(
        "reproduce", parents=[common],
        help="print paper tables/figures (all by default)",
    )
    reproduce.add_argument(
        "--only", metavar="NAMES", default=None,
        help="comma-separated experiment names (e.g. fig5,tab2)",
    )
    reproduce.add_argument(
        "--list", action="store_true",
        help="print the experiment registry table and exit",
    )
    export = sub.add_parser(
        "export", parents=[common], help="write datasets to a directory"
    )
    export.add_argument("directory", help="output directory")
    audit = sub.add_parser(
        "audit", parents=[common],
        help="list unconformant member organisations",
    )
    audit.add_argument(
        "--json", action="store_true", help="emit the audit as JSON"
    )
    hijack = sub.add_parser(
        "hijack", parents=[common], help="simulate one origin hijack"
    )
    hijack.add_argument(
        "--sub-prefix", action="store_true",
        help="announce a more-specific instead of the exact prefix",
    )
    hijack.add_argument(
        "--protected", action="store_true",
        help="victim has a ROA (hijack becomes RPKI Invalid)",
    )
    ready = sub.add_parser(
        "ready", parents=[common],
        help="check whether an AS meets the MANRS requirements",
    )
    ready.add_argument("asn", type=int, help="AS number to evaluate")
    ready.add_argument(
        "--json", action="store_true", help="emit the readiness check as JSON"
    )
    cache = sub.add_parser(
        "cache", parents=[common], help="manage the checkpoint store"
    )
    cache_sub = cache.add_subparsers(dest="cache_command", required=True)
    cache_sub.add_parser(
        "list", parents=[common], help="list stored checkpoint entries"
    )
    cache_sub.add_parser(
        "verify", parents=[common],
        help="re-hash every entry and report problems",
    )
    prune = cache_sub.add_parser(
        "prune", parents=[common], help="delete stored entries"
    )
    prune.add_argument(
        "--keep", type=int, default=0, metavar="N",
        help="keep the N most recently created entries (default: none)",
    )
    warm = cache_sub.add_parser(
        "warm", parents=[common],
        help="build (or load) the world for --scale/--seed and store it",
    )
    warm.add_argument(
        "--years", action="store_true",
        help="also checkpoint the per-year timeline VRP snapshots",
    )
    sweep = sub.add_parser(
        "sweep", parents=[common],
        help="run job grids with a persistent run ledger",
    )
    sweep_sub = sweep.add_subparsers(dest="sweep_command", required=True)
    for verb, description in (
        ("run", "expand the spec and run every job not already done"),
        ("resume", "re-run only the jobs without a verified result"),
        ("status", "print per-job ledger status for the spec"),
        ("report", "aggregate completed results by experiment"),
    ):
        verb_parser = sweep_sub.add_parser(
            verb, parents=[common], help=description
        )
        verb_parser.add_argument("spec", help="sweep spec JSON file")
        if verb in ("run", "resume"):
            verb_parser.add_argument(
                "--workers", type=int, default=None,
                help="worker processes (default: spec, then REPRO_JOBS)",
            )
            verb_parser.add_argument(
                "--timeout", type=float, default=None,
                help="per-attempt seconds (overrides the spec)",
            )
            verb_parser.add_argument(
                "--max-attempts", type=int, default=None,
                help="attempts per job (overrides the spec)",
            )
    sweep_sub.add_parser(
        "list", parents=[common],
        help="print the experiment registry table",
    )
    serve = sub.add_parser(
        "serve", parents=[common],
        help="run the measurement service (async HTTP query API)",
    )
    serve.add_argument(
        "--host", default="127.0.0.1", help="bind address (default: loopback)"
    )
    serve.add_argument(
        "--port", type=int, default=8351,
        help="bind port (0 = ephemeral; default: 8351)",
    )
    serve.add_argument(
        "--workers", type=int, default=2,
        help="build worker processes (default: 2)",
    )
    serve.add_argument(
        "--queue-limit", type=int, default=None,
        help="pending cold builds before 503 (default: 32)",
    )
    serve.add_argument(
        "--builders", type=int, default=None,
        help="concurrent queue drains (default: 2)",
    )
    replay = sub.add_parser(
        "replay", parents=[common],
        help="replay a synthetic event stream and verify checkpoint digests",
    )
    replay.add_argument(
        "--events", type=int, default=12,
        help="number of events to synthesize and apply (default: 12)",
    )
    replay.add_argument(
        "--event-seed", type=int, default=0,
        help="seed for the synthetic event stream (default: 0)",
    )
    replay.add_argument(
        "--checkpoints", type=int, default=3,
        help="instants to digest along the stream (default: 3)",
    )
    replay.add_argument(
        "--verify", action=argparse.BooleanOptionalAction, default=True,
        help="cold-rebuild at each checkpoint and compare digests "
             "(--no-verify prints live digests only)",
    )
    bench = sub.add_parser(
        "bench", parents=[common],
        help="manage the benchmark ledger (run, list, baseline, compare, "
             "trend, clean)",
    )
    bench_sub = bench.add_subparsers(dest="bench_command", required=True)
    bench_run = bench_sub.add_parser(
        "run", parents=[common],
        help="run benchmarks/run.py and record the result",
    )
    bench_run.add_argument(
        "--label", default=None, help="run label (default: timestamp)"
    )
    bench_run.add_argument(
        "--from-json", metavar="PATH", default=None,
        help="ingest an existing BENCH_*.json instead of running",
    )
    bench_run.add_argument(
        "--args", default="", metavar="ARGS",
        help="extra arguments passed through to benchmarks/run.py",
    )
    bench_sub.add_parser(
        "list", parents=[common], help="list recorded benchmark runs"
    )
    baseline = bench_sub.add_parser(
        "baseline", parents=[common],
        help="mark a recorded run as the comparison baseline",
    )
    baseline.add_argument("label", nargs="?", default=None,
                          help="run label (default: the latest run)")
    compare = bench_sub.add_parser(
        "compare", parents=[common],
        help="compare a run against the baseline (exit 3 on regression)",
    )
    compare.add_argument("label", nargs="?", default=None,
                         help="run label (default: the latest run)")
    compare.add_argument(
        "--threshold", type=float, default=0.25,
        help="regression threshold as a fraction (default: 0.25)",
    )
    trend = bench_sub.add_parser(
        "trend", parents=[common],
        help="per-metric series across recorded runs (oldest to newest)",
    )
    trend.add_argument(
        "--json", action="store_true", help="emit the trend as JSON"
    )
    trend.add_argument(
        "--last", type=int, default=None, metavar="N",
        help="restrict to the N most recent runs (default: all)",
    )
    clean = bench_sub.add_parser(
        "clean", parents=[common], help="drop old benchmark records"
    )
    clean.add_argument(
        "--keep", type=int, default=10, metavar="N",
        help="keep the N most recent runs (default: 10)",
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    try:
        code = _dispatch(args)
    finally:
        if args.trace_json:
            obs.write_json(args.trace_json)
    return code


def _store_from(args: argparse.Namespace) -> CheckpointStore | None:
    """The checkpoint store selected by --cache-dir / REPRO_CACHE_DIR."""
    if getattr(args, "cache_dir", None):
        return CheckpointStore(args.cache_dir)
    return default_store()


def _obtain_world(args: argparse.Namespace):
    """Warm-start the world from the store, else build cold and save it."""
    store = _store_from(args)
    if store is not None:
        world = store.load(ScenarioConfig(), args.scale, args.seed)
        if world is not None:
            return world
    with obs.span("cli.build_world"):
        world = build_world(scale=args.scale, seed=args.seed)
    if store is not None:
        store.save(world)
    return world


def _dispatch(args: argparse.Namespace) -> int:
    if args.command == "cache":
        return _cache(args)
    if args.command == "sweep":
        return _sweep(args)
    if args.command == "serve":
        return _serve(args)
    if args.command == "bench":
        return _bench(args)
    if args.command == "replay":
        return _replay(args)
    if args.command == "reproduce":
        if args.list:
            print(registry_table())
            return 0
        try:
            specs = select(args.only)
        except KeyError as error:
            print(error.args[0], file=sys.stderr)
            return 2
    with obs.span(f"cli.{args.command}", scale=args.scale, seed=args.seed):
        world = _obtain_world(args)

        if args.command == "report":
            report = build_report(world)
            if args.json:
                print(json.dumps(report_as_dict(report), indent=2))
            else:
                print(render_report(report))
        elif args.command == "reproduce":
            sections = []
            for spec in specs:
                with obs.span(f"experiment.{spec.name}", title=spec.title):
                    sections.append(spec.render(spec.run(world)))
            print("\n\n".join(sections))
        elif args.command == "export":
            path = export_world(world, args.directory)
            print(f"datasets written to {path}")
        elif args.command == "audit":
            _audit(world, as_json=args.json)
        elif args.command == "hijack":
            _hijack(world, sub_prefix=args.sub_prefix, protected=args.protected)
        elif args.command == "ready":
            from repro.core.readiness import (
                check_readiness,
                readiness_as_dict,
                render_readiness,
            )

            if args.asn not in world.topology:
                print(f"AS{args.asn} is not in this world", file=sys.stderr)
                return 1
            readiness = check_readiness(world, args.asn)
            if args.json:
                print(json.dumps(readiness_as_dict(readiness), indent=2))
            else:
                print(render_readiness(readiness))
    return 0


def _serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.config import RuntimeConfig
    from repro.serve import (
        DEFAULT_BUILDERS,
        DEFAULT_QUEUE_LIMIT,
        ReproService,
        serve_forever,
    )

    store = _store_from(args)
    runtime = RuntimeConfig.resolve(
        cache_dir=str(store.root) if store is not None else None
    )
    service = ReproService(
        store=store,
        runtime=runtime,
        workers=args.workers,
        queue_limit=args.queue_limit or DEFAULT_QUEUE_LIMIT,
        builders=args.builders or DEFAULT_BUILDERS,
    )
    if store is None:
        print(
            "serving without a cache directory: results are cached "
            "in memory only (pass --cache-dir to persist them)",
            file=sys.stderr,
        )
    try:
        asyncio.run(
            serve_forever(
                service,
                args.host,
                args.port,
                announce=lambda line: print(line, flush=True),
            )
        )
    except KeyboardInterrupt:
        print("shutting down", file=sys.stderr)
    return 0


def _bench(args: argparse.Namespace) -> int:
    from repro import bench

    return bench.main(args)


def _replay(args: argparse.Namespace) -> int:
    """Apply a synthetic event stream and digest the live world along it.

    With ``--verify`` (the default) every checkpoint is also rebuilt cold
    from the base world plus the applied prefix of the stream, and the
    two digests compared — the replay==rebuild invariant as a CLI
    one-liner.  Exits 1 on any mismatch.
    """
    from repro.datasets.checkpoint import world_digest
    from repro.delta import LiveWorld, cold_rebuild, synthesize_events

    if args.events < 1:
        print("--events must be positive", file=sys.stderr)
        return 2
    with obs.span(
        "cli.replay",
        scale=args.scale,
        seed=args.seed,
        events=args.events,
    ):
        world = _obtain_world(args)
        events = synthesize_events(
            world, n=args.events, seed=args.event_seed
        )
        live = LiveWorld(world)
        n_checkpoints = max(1, min(args.checkpoints, args.events))
        marks = sorted(
            {
                max(1, round((i + 1) * args.events / n_checkpoints))
                for i in range(n_checkpoints)
            }
        )
        failures = 0
        applied = 0
        for mark in marks:
            while applied < mark:
                live.apply(events[applied])
                applied += 1
            digest = world_digest(live.world())
            if args.verify:
                reference = world_digest(
                    cold_rebuild(world, events[:applied])
                )
                if digest == reference:
                    print(f"checkpoint {applied:>4}  {digest[:16]}  ok")
                else:
                    failures += 1
                    print(
                        f"checkpoint {applied:>4}  {digest[:16]}  "
                        f"MISMATCH (rebuild {reference[:16]})"
                    )
            else:
                print(f"checkpoint {applied:>4}  {digest[:16]}  ok")
    verdict = "all equal" if not failures else f"{failures} mismatched"
    mode = "replay==rebuild" if args.verify else "replay digests only"
    print(f"-- {applied} events, {len(marks)} checkpoints, {mode}: {verdict}")
    return 1 if failures else 0


def _sweep(args: argparse.Namespace) -> int:
    from repro.sweep import (
        RunLedger,
        SweepSpec,
        SweepSpecError,
        aggregate,
        render_report,
        render_status,
        run_sweep,
    )

    if args.sweep_command == "list":
        print(registry_table())
        return 0
    store = _store_from(args)
    if store is None:
        print(
            "no cache directory: pass --cache-dir or set REPRO_CACHE_DIR "
            "(the sweep ledger lives under <cache dir>/sweeps)",
            file=sys.stderr,
        )
        return 2
    ledger_root = store.root / "sweeps"
    try:
        spec = SweepSpec.from_file(args.spec)
        if getattr(args, "timeout", None) is not None:
            spec.timeout = args.timeout
        if getattr(args, "max_attempts", None) is not None:
            spec.max_attempts = max(1, args.max_attempts)
        jobs = spec.expand()
    except SweepSpecError as error:
        print(f"invalid sweep spec: {error}", file=sys.stderr)
        return 2

    if args.sweep_command in ("run", "resume"):
        outcome = run_sweep(
            spec,
            ledger_root,
            workers=args.workers,
            progress=lambda message: print(message, file=sys.stderr),
        )
        print(outcome.summary())
        for job_id, error in sorted(outcome.failures.items()):
            print(f"failed {job_id[:12]}: {error}")
        print(f"ledger: {outcome.ledger_dir}")
        return 0 if outcome.ok else 1
    ledger = RunLedger(ledger_root / spec.sweep_id)
    if args.sweep_command == "status":
        print(render_status(jobs, ledger.job_states()))
        return 0
    # report
    aggregated = aggregate(jobs, ledger.completed())
    print(render_report(aggregated))
    return 0 if not aggregated["missing"] else 1


def _cache(args: argparse.Namespace) -> int:
    store = _store_from(args)
    if store is None:
        print(
            "no cache directory: pass --cache-dir or set REPRO_CACHE_DIR",
            file=sys.stderr,
        )
        return 2
    if args.cache_command == "list":
        entries = store.entries()
        for info in entries:
            state = "ok" if info.complete else "incomplete"
            scale = "?" if info.scale is None else f"{info.scale:g}"
            seed = "?" if info.seed is None else info.seed
            print(
                f"{info.key[:16]}  scale={scale} seed={seed} "
                f"files={info.n_files} bytes={info.n_bytes} [{state}]"
            )
        total = sum(info.n_bytes for info in entries)
        print(f"-- {len(entries)} entries, {total} bytes in {store.root}")
    elif args.cache_command == "verify":
        report = store.verify()
        bad = 0
        for key, problems in sorted(report.items()):
            if problems:
                bad += 1
                for problem in problems:
                    print(f"{key[:16]}  {problem}")
            else:
                print(f"{key[:16]}  ok")
        print(f"-- {len(report) - bad}/{len(report)} entries verified")
        return 1 if bad else 0
    elif args.cache_command == "prune":
        removed = store.prune(keep=max(0, args.keep))
        for key in removed:
            print(f"removed {key[:16]}")
        print(f"-- {len(removed)} entries removed, {args.keep} kept")
    elif args.cache_command == "warm":
        with obs.span("cli.cache_warm", scale=args.scale, seed=args.seed):
            world = _obtain_world(args)
            summary = f"world scale={args.scale:g} seed={args.seed} stored"
            if args.years:
                from repro.scenario.timeline import Timeline

                timeline = Timeline(world, store=store)
                for year in timeline.years:
                    timeline.rov_at(year)
                summary += f" (+{len(timeline.years)} year snapshots)"
        print(f"{summary} in {store.root}")
    return 0


def _audit(world, as_json: bool = False) -> None:
    from repro.core.conformance import (
        is_action4_conformant,
        origination_stats,
    )
    from repro.manrs.actions import Program

    stats = origination_stats(world.ihr)
    rows = []
    for participant in world.manrs.participants:
        if participant.joined > world.snapshot_date:
            continue
        if participant.program not in (Program.ISP, Program.CDN):
            continue
        bad = [
            asn
            for asn in participant.asns
            if asn in stats
            and not is_action4_conformant(stats[asn], participant.program)
        ]
        if bad:
            org = world.topology.get_org(participant.org_id)
            rows.append(
                {
                    "org": org.name,
                    "program": participant.program.value,
                    "asns": [
                        {"asn": a, "og_conformant_pct": stats[a].og_conformant}
                        for a in bad
                    ],
                }
            )
    if as_json:
        print(json.dumps({"unconformant_orgs": rows}, indent=2))
        return
    for row in rows:
        asn_text = ", ".join(
            f"AS{entry['asn']} ({entry['og_conformant_pct']:.0f}%)"
            for entry in row["asns"]
        )
        print(f"{row['org']} [{row['program']}]: {asn_text}")
    print(f"-- {len(rows)} organisations unconformant to Action 4")


def _hijack(world, sub_prefix: bool, protected: bool) -> None:
    import numpy as np

    from repro.bgp.announcement import Announcement
    from repro.bgp.hijack import HijackKind, simulate_hijack
    from repro.bgp.policy import RouteClass
    from repro.topology.classify import SizeClass

    rng = np.random.default_rng(world.seed)
    stubs = [
        asn
        for asn, size in world.size_of.items()
        if size is SizeClass.SMALL and world.originations.get(asn)
    ]
    victim_asn, attacker = (int(a) for a in rng.choice(stubs, 2, replace=False))
    victim = Announcement(world.originations[victim_asn][0].prefix, victim_asn)
    outcome = simulate_hijack(
        world.engine,
        victim,
        attacker,
        world.vantage_points,
        kind=HijackKind.SUB_PREFIX if sub_prefix else HijackKind.EXACT_PREFIX,
        hijack_route_class=RouteClass(rpki_invalid=protected),
    )
    print(
        f"AS{attacker} hijacks {victim} "
        f"({outcome.kind.value}, victim {'ROA-protected' if protected else 'unprotected'}): "
        f"{100 * outcome.capture_fraction:.1f}% of vantage points captured"
    )


if __name__ == "__main__":
    sys.exit(main())
