"""IRR route validation (§6.1 of the paper).

The paper classifies a BGP route against IRR route objects with the same
procedure as RPKI ROV, treating each route object's own prefix length as
its max-length (the IRR has no maxLength attribute):

* **VALID** — an exact-prefix route object with matching origin exists;
* **INVALID_LENGTH** — a covering route object with matching origin
  exists, but the announcement is more specific than the object
  (the traffic-engineering de-aggregation case §3 treats as conformant);
* **INVALID_ORIGIN** — covering objects exist but none matches the origin
  (the paper's "IRR Invalid");
* **NOT_FOUND** — no covering route object.
"""

from __future__ import annotations

from enum import Enum

from repro.irr.database import IRRCollection, IRRDatabase
from repro.net.prefix import Prefix

__all__ = ["IRRStatus", "validate_irr"]


class IRRStatus(str, Enum):
    """IRR route classification outcome."""

    VALID = "valid"
    INVALID_ORIGIN = "invalid_origin"
    INVALID_LENGTH = "invalid_length"
    NOT_FOUND = "not_found"

    @property
    def is_invalid_origin(self) -> bool:
        """True only for the origin-mismatch flavour (the one MANRS
        conformance penalises)."""
        return self is IRRStatus.INVALID_ORIGIN


def validate_irr(
    registry: IRRCollection | IRRDatabase, prefix: Prefix, origin: int
) -> IRRStatus:
    """Classify one route against the registry's route objects."""
    covering = registry.routes_covering(prefix)
    if not covering:
        return IRRStatus.NOT_FOUND
    origin_match = False
    for route_object in covering:
        if route_object.origin == origin:
            if route_object.prefix.length == prefix.length:
                return IRRStatus.VALID
            origin_match = True
    return IRRStatus.INVALID_LENGTH if origin_match else IRRStatus.INVALID_ORIGIN
