"""IRR route validation (§6.1 of the paper).

The paper classifies a BGP route against IRR route objects with the same
procedure as RPKI ROV, treating each route object's own prefix length as
its max-length (the IRR has no maxLength attribute):

* **VALID** — an exact-prefix route object with matching origin exists;
* **INVALID_LENGTH** — a covering route object with matching origin
  exists, but the announcement is more specific than the object
  (the traffic-engineering de-aggregation case §3 treats as conformant);
* **INVALID_ORIGIN** — covering objects exist but none matches the origin
  (the paper's "IRR Invalid");
* **NOT_FOUND** — no covering route object.

Classification is memoised per registry: registries are built once per
snapshot and then queried heavily with repeating (prefix, origin) pairs
(announcement classing, the IHR pipeline, conformance checks), so each
pair's covering-object walk runs once per registry state.  The memo is
stored on the registry object and keyed by its mutation counter, so
adding or removing route objects transparently invalidates it.
"""

from __future__ import annotations

import logging
from enum import Enum
from typing import Iterable

import numpy as np

from repro import config as _config
from repro import kernels, obs
from repro.config import RuntimeConfig
from repro.kernels.intervals import RouteIntervalIndex
from repro.irr.database import IRRCollection, IRRDatabase
from repro.irr.objects import RouteObject
from repro.net.prefix import Prefix
from repro.shard import (
    ColumnAccumulator,
    SpillError,
    check_shard_manifests,
    pool_map_consume,
    resolve_build_budget,
    resolve_shards,
    shard_manifest,
    split_evenly,
)

__all__ = ["IRRStatus", "validate_irr", "validate_irr_many"]

log = logging.getLogger(__name__)

#: Below this many pending routes the per-pool registry pickling cannot
#: pay for itself; bulk validation stays in-process regardless of shards.
MIN_SHARD_ROUTES = 2048


class IRRStatus(str, Enum):
    """IRR route classification outcome."""

    VALID = "valid"
    INVALID_ORIGIN = "invalid_origin"
    INVALID_LENGTH = "invalid_length"
    NOT_FOUND = "not_found"

    @property
    def is_invalid_origin(self) -> bool:
        """True only for the origin-mismatch flavour (the one MANRS
        conformance penalises)."""
        return self is IRRStatus.INVALID_ORIGIN


def _classify(
    covering: list[RouteObject], prefix: Prefix, origin: int
) -> IRRStatus:
    """Classification given the covering route objects."""
    if not covering:
        return IRRStatus.NOT_FOUND
    origin_match = False
    for route_object in covering:
        if route_object.origin == origin:
            if route_object.prefix.length == prefix.length:
                return IRRStatus.VALID
            origin_match = True
    return IRRStatus.INVALID_LENGTH if origin_match else IRRStatus.INVALID_ORIGIN


#: Interval-kernel verdict code → IRR status (see kernels.intervals).
_STATUS_BY_CODE = (
    IRRStatus.NOT_FOUND,
    IRRStatus.VALID,
    IRRStatus.INVALID_LENGTH,
    IRRStatus.INVALID_ORIGIN,
)

#: The inverse mapping, for packing verdicts into column shards.
_CODE_BY_STATUS = {status: code for code, status in enumerate(_STATUS_BY_CODE)}


def _index_of(
    registry: IRRCollection | IRRDatabase,
) -> RouteIntervalIndex | None:
    """The registry's current-state interval index, or None if unsupported.

    Like the verdict memo, the index is cached in the registry object's
    ``__dict__`` tagged with the mutation counter it was built against.
    A route object's own prefix length serves as its max-length, which
    makes the paper's IRR procedure the exact RFC 6811 verdict function
    (a covering match is VALID only at the registered length).
    """
    version = getattr(registry, "version", None)
    if version is None:
        return None
    cached = getattr(registry, "_interval_index", None)
    if cached is not None and cached[0] == version:
        return cached[1]
    if isinstance(registry, IRRCollection):
        databases = registry.databases
    else:
        databases = [registry]
    index = RouteIntervalIndex(
        (
            (route.prefix, route.origin, route.prefix.length)
            for database in databases
            for route in database.iter_route_objects()
        ),
        zero_asn_matches=True,
    )
    try:
        registry._interval_index = (version, index)
    except AttributeError:  # e.g. a slotted test double
        return None
    return index


def _memo_of(
    registry: IRRCollection | IRRDatabase,
) -> dict[tuple[Prefix, int], IRRStatus] | None:
    """The registry's current-state memo, or None if unsupported.

    The memo lives in the registry object's ``__dict__`` tagged with the
    mutation counter it was built against; any mutation since then makes
    it stale and it is replaced with a fresh one.
    """
    version = getattr(registry, "version", None)
    if version is None:
        return None
    cached = getattr(registry, "_validation_memo", None)
    if cached is not None and cached[0] == version:
        return cached[1]
    memo: dict[tuple[Prefix, int], IRRStatus] = {}
    try:
        registry._validation_memo = (version, memo)
    except AttributeError:  # e.g. a slotted test double
        return None
    return memo


def seed_memo(
    registry: IRRCollection | IRRDatabase,
    verdicts: dict[tuple[Prefix, int], IRRStatus],
) -> bool:
    """Pre-populate the registry's current-version verdict memo.

    After a registry mutation the version-tagged memo starts empty; a
    caller that knows which routes the mutation *cannot* have affected
    (no added/removed object covers them — see :mod:`repro.delta`) can
    seed their old verdicts instead of re-walking the trie for each.
    Returns False when the registry does not support memoisation.
    """
    memo = _memo_of(registry)
    if memo is None:
        return False
    memo.update(verdicts)
    return True


def validate_irr(
    registry: IRRCollection | IRRDatabase, prefix: Prefix, origin: int
) -> IRRStatus:
    """Classify one route against the registry's route objects."""
    memo = _memo_of(registry)
    if memo is None:
        return _classify(registry.routes_covering(prefix), prefix, origin)
    key = (prefix, origin)
    status = memo.get(key)
    if status is None:
        status = _classify(registry.routes_covering(prefix), prefix, origin)
        memo[key] = status
    return status


def _classify_pending(
    registry: IRRCollection | IRRDatabase,
    pending: list[tuple[Prefix, int]],
) -> list[IRRStatus]:
    """Bulk-classify not-yet-memoised routes, aligned with ``pending``."""
    index = _index_of(registry) if kernels.use_numpy() else None
    if index is not None:
        codes = index.classify_routes(pending)
        return [_STATUS_BY_CODE[code] for code in codes.tolist()]
    covering = registry.routes_covering_many(prefix for prefix, _ in pending)
    return [
        _classify(covering[prefix], prefix, origin)
        for prefix, origin in pending
    ]


def _sharded_statuses(
    registry: IRRCollection | IRRDatabase,
    pending: list[tuple[Prefix, int]],
    shards: int,
    jobs: int,
) -> list[IRRStatus] | None:
    """Classify prefix-range shards on a process pool; None = fall back.

    Same contract as the ROV variant: ``pending`` is sorted, chunks are
    contiguous prefix ranges, workers emit verdict-code columns, and the
    driver concatenates in shard order.
    """
    chunks = split_evenly(pending, shards)
    total = len(chunks)
    tasks = [(index, total, list(chunk)) for index, chunk in enumerate(chunks)]
    obs.add("irr.validate_shards", total)
    manifests: list[dict] = []
    rows_seen = 0
    try:
        with ColumnAccumulator(
            "irr.validate", budget_bytes=resolve_build_budget()
        ) as accumulator:

            def consume(result: tuple[dict, np.ndarray]) -> None:
                nonlocal rows_seen
                manifest, codes = result
                manifests.append(manifest)
                rows_seen += len(codes)
                accumulator.append({"codes": codes})

            ok = pool_map_consume(
                _classify_route_shard,
                tasks,
                workers=max(jobs, 1),
                consume=consume,
                initializer=_init_irr_shard_worker,
                initargs=(registry,),
            )
            if not ok:
                return None
            problems = check_shard_manifests(manifests, "irr.validate", total)
            if not problems and rows_seen != len(pending):
                problems.append("row accounting mismatch")
            if problems:
                log.warning(
                    "discarding sharded IRR validation (%s); "
                    "recomputing unsharded",
                    "; ".join(problems),
                )
                obs.add("shard.discarded")
                return None
            codes = accumulator.concat()["codes"]
    except SpillError as error:
        log.warning(
            "discarding sharded IRR validation (%s); recomputing unsharded",
            error,
        )
        obs.add("shard.discarded")
        return None
    return [_STATUS_BY_CODE[code] for code in codes.tolist()]


def validate_irr_many(
    registry: IRRCollection | IRRDatabase,
    routes: Iterable[tuple[Prefix, int]],
    shards: int | None = None,
    jobs: int | None = None,
    runtime: RuntimeConfig | None = None,
) -> dict[tuple[Prefix, int], IRRStatus]:
    """Classify a batch of routes with one bulk covering walk.

    Equivalent to calling :func:`validate_irr` per route; covering
    objects for all not-yet-memoised prefixes are collected via the
    registry's ``routes_covering_many`` bulk lookup first.

    ``shards`` (default: the runtime config / ``REPRO_SHARDS``, else 1)
    fans the bulk classification across a process pool by prefix range;
    verdicts are per-route pure, so the sharded result is identical.
    ``runtime`` installs a :class:`repro.config.RuntimeConfig` for the
    duration of the call.
    """
    if runtime is not None:
        with _config.use(runtime):
            return validate_irr_many(registry, routes, shards=shards, jobs=jobs)
    routes = set(routes)
    memo = _memo_of(registry)
    if memo is None:
        return {
            key: _classify(registry.routes_covering(key[0]), key[0], key[1])
            for key in routes
        }
    results: dict[tuple[Prefix, int], IRRStatus] = {}
    pending: list[tuple[Prefix, int]] = []
    for key in routes:
        status = memo.get(key)
        if status is None:
            pending.append(key)
        else:
            results[key] = status
    if pending:
        statuses = None
        shards = resolve_shards(shards)
        if shards > 1 and len(pending) >= MIN_SHARD_ROUTES:
            # Sort so chunks are genuine prefix ranges (and shard
            # boundaries never depend on set-iteration order).
            pending.sort()
            statuses = _sharded_statuses(
                registry, pending, shards, obs.resolve_jobs(jobs)
            )
        if statuses is None:
            statuses = _classify_pending(registry, pending)
        tallies: dict[IRRStatus, int] = {}
        for key, status in zip(pending, statuses):
            memo[key] = status
            results[key] = status
            tallies[status] = tallies.get(status, 0) + 1
        for status, tally in tallies.items():
            obs.add(f"irr.verdict.{status.value}", tally)
    obs.add("irr.memo_hits", len(routes) - len(pending))
    obs.add("irr.memo_misses", len(pending))
    return results


# Worker-process state for prefix-range sharded validation, installed
# once per worker by the pool initializer (the registry pickles once).
_shard_registry: IRRCollection | IRRDatabase | None = None


def _init_irr_shard_worker(registry: IRRCollection | IRRDatabase) -> None:
    global _shard_registry
    _shard_registry = registry


def _classify_route_shard(task: tuple) -> tuple[dict, np.ndarray]:
    """Classify one prefix-range chunk; emits a verdict-code column."""
    index, total, chunk = task
    assert _shard_registry is not None
    statuses = _classify_pending(_shard_registry, chunk)
    codes = np.fromiter(
        (_CODE_BY_STATUS[status] for status in statuses),
        dtype=np.int8,
        count=len(statuses),
    )
    return shard_manifest("irr.validate", index, total, len(chunk)), codes
