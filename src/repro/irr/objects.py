"""RPSL object model (RFC 2622 subset).

The IRR consists of databases of RPSL objects.  We model the object
classes the paper's analyses touch: ``route``/``route6`` (the prefix-origin
registrations Action 4 checks), ``aut-num`` (per-AS policy and contact),
``as-set`` (customer-AS expansion used by IXPs/cloud providers for
filtering, §2.2), and ``mntner`` (authorisation handles, kept for
realism of the database model).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import date

from repro.errors import RPSLError
from repro.net.asn import format_asn, validate_asn
from repro.net.prefix import Prefix

__all__ = [
    "RouteObject",
    "AutNumObject",
    "AsSetObject",
    "MntnerObject",
    "RPSL_CLASSES",
]

_AS_SET_NAME_PREFIX = "AS-"


@dataclass(frozen=True)
class RouteObject:
    """A ``route`` (or ``route6``) object: prefix + intended origin AS."""

    prefix: Prefix
    origin: int
    source: str                # database name, e.g. "RIPE" or "RADB"
    mnt_by: str = "MAINT-NONE"
    descr: str = ""
    created: date | None = None
    last_modified: date | None = None

    def __post_init__(self) -> None:
        validate_asn(self.origin)
        if not self.source:
            raise RPSLError("route object requires a source attribute")

    @property
    def rpsl_class(self) -> str:
        """``route`` for IPv4, ``route6`` for IPv6."""
        return "route" if self.prefix.version == 4 else "route6"


@dataclass(frozen=True)
class AutNumObject:
    """An ``aut-num`` object: AS policy and contact registration.

    ``admin_c``/``tech_c`` being present and fresh is what MANRS Action 3
    (maintain contact information) checks.
    """

    asn: int
    as_name: str
    source: str
    mnt_by: str = "MAINT-NONE"
    admin_c: str = ""
    tech_c: str = ""
    import_lines: tuple[str, ...] = ()
    export_lines: tuple[str, ...] = ()
    last_modified: date | None = None

    def __post_init__(self) -> None:
        validate_asn(self.asn)

    @property
    def has_contact(self) -> bool:
        """True when at least one contact handle is registered."""
        return bool(self.admin_c or self.tech_c)


@dataclass(frozen=True)
class AsSetObject:
    """An ``as-set``: a named set of ASNs and/or other as-sets."""

    name: str
    members: tuple[str, ...]   # "AS65001" or nested "AS-CUSTOMERS"
    source: str
    mnt_by: str = "MAINT-NONE"

    def __post_init__(self) -> None:
        if not self.name.upper().startswith(_AS_SET_NAME_PREFIX):
            raise RPSLError(f"as-set name must start with AS-: {self.name!r}")

    @property
    def direct_asns(self) -> tuple[int, ...]:
        """Member ASNs listed directly (not via nested sets)."""
        asns = []
        for member in self.members:
            if not member.upper().startswith(_AS_SET_NAME_PREFIX):
                asns.append(int(member[2:]) if member.upper().startswith("AS") else int(member))
        return tuple(asns)

    @property
    def nested_sets(self) -> tuple[str, ...]:
        """Member as-set names."""
        return tuple(
            member
            for member in self.members
            if member.upper().startswith(_AS_SET_NAME_PREFIX)
        )


@dataclass(frozen=True)
class MntnerObject:
    """A ``mntner``: the authorisation object protecting other objects."""

    name: str
    admin_c: str = ""
    auth: str = "CRYPT-PW dummy"
    source: str = "RADB"


RPSL_CLASSES = ("route", "route6", "aut-num", "as-set", "mntner")


def as_set_member(asn_or_set: int | str) -> str:
    """Canonical member token: ints become ``AS<digits>``."""
    if isinstance(asn_or_set, int):
        return format_asn(asn_or_set)
    return asn_or_set
