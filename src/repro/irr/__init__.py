"""IRR substrate: RPSL objects, databases, as-set expansion, validation."""

from repro.irr.asset import expand_as_set
from repro.irr.database import IRRCollection, IRRDatabase
from repro.irr.filtergen import FilterEntry, PrefixFilter, build_prefix_filter
from repro.irr.objects import (
    AsSetObject,
    AutNumObject,
    MntnerObject,
    RouteObject,
)
from repro.irr.rpsl import (
    parse_database,
    parse_object,
    parse_rpsl_blocks,
    serialize_database,
    serialize_object,
)
from repro.irr.validation import IRRStatus, validate_irr

__all__ = [
    "AsSetObject",
    "AutNumObject",
    "IRRCollection",
    "IRRDatabase",
    "IRRStatus",
    "FilterEntry",
    "PrefixFilter",
    "build_prefix_filter",
    "MntnerObject",
    "RouteObject",
    "expand_as_set",
    "parse_database",
    "parse_object",
    "parse_rpsl_blocks",
    "serialize_database",
    "serialize_object",
    "validate_irr",
]
