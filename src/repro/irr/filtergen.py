"""Prefix-filter generation from the IRR (the bgpq3/bgpq4 workflow).

§2.2 notes that IXPs and cloud providers expand customer ``as-set``
objects to decide which announcements to accept.  This module implements
that operator workflow: expand an as-set to its member ASNs, collect
their registered route objects, and emit a prefix filter — each entry a
(prefix, max acceptable length) pair, honouring the usual ``upto``
de-aggregation allowance.

The generated filter is directly usable as a predicate, so tests can
check the operationally important property: a filter built from a clean
IRR admits exactly the registered announcements (plus allowed
more-specifics) and nothing else.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.irr.asset import expand_as_set
from repro.irr.database import IRRCollection, IRRDatabase
from repro.net.prefix import Prefix
from repro.net.radix import RadixTree

__all__ = ["FilterEntry", "PrefixFilter", "build_prefix_filter"]


@dataclass(frozen=True)
class FilterEntry:
    """One generated filter line: accept ``prefix`` up to ``max_length``."""

    prefix: Prefix
    max_length: int
    origin: int

    def admits(self, announced: Prefix) -> bool:
        """Does this entry accept the announcement?"""
        return (
            self.prefix.contains(announced)
            and announced.length <= self.max_length
        )

    def __str__(self) -> str:
        return f"permit {self.prefix} le {self.max_length} (AS{self.origin})"


class PrefixFilter:
    """A compiled prefix filter with radix-backed matching."""

    def __init__(self, entries: list[FilterEntry]):
        self._entries = list(entries)
        self._tree: RadixTree[FilterEntry] = RadixTree()
        for entry in entries:
            self._tree.insert(entry.prefix, entry)

    @property
    def entries(self) -> list[FilterEntry]:
        """All filter lines, in insertion order."""
        return list(self._entries)

    def admits(self, prefix: Prefix, origin: int | None = None) -> bool:
        """Accept ``prefix`` (optionally checking the announcing origin)."""
        for entry in self._tree.covering(prefix):
            if prefix.length > entry.max_length:
                continue
            if origin is not None and entry.origin != origin:
                continue
            return True
        return False

    def render(self) -> str:
        """The filter as router-config-style text."""
        return "\n".join(str(entry) for entry in self._entries)

    def __len__(self) -> int:
        return len(self._entries)


def build_prefix_filter(
    registry: IRRCollection | IRRDatabase,
    as_set_name: str,
    upto: int = 24,
    strict: bool = False,
) -> PrefixFilter:
    """Build the filter for a customer as-set (bgpq-style).

    ``upto`` is the de-aggregation allowance: a registered /16 admits
    announcements down to /``upto`` (default 24, the common IPv4 policy).
    IPv6 route objects get the registered length + 8, capped at /48.
    """
    asns = expand_as_set(registry, as_set_name, strict=strict)
    by_origin = _routes_by_origin(registry)
    entries: list[FilterEntry] = []
    seen: set[tuple[Prefix, int]] = set()
    for asn in sorted(asns):
        for route_object in by_origin.get(asn, ()):
            prefix = route_object.prefix
            if prefix.version == 4:
                max_length = max(prefix.length, upto)
            else:
                max_length = min(max(prefix.length, prefix.length + 8), 48)
            key = (prefix, asn)
            if key in seen:
                continue
            seen.add(key)
            entries.append(
                FilterEntry(prefix=prefix, max_length=max_length, origin=asn)
            )
    return PrefixFilter(entries)


def _routes_by_origin(registry: IRRCollection | IRRDatabase):
    """Index every route object by origin ASN (one scan, then O(1))."""
    databases = (
        registry.databases
        if isinstance(registry, IRRCollection)
        else [registry]
    )
    index: dict[int, list] = {}
    for database in databases:
        for route_object in database.all_routes():
            index.setdefault(route_object.origin, []).append(route_object)
    return index
