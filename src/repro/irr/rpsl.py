"""RPSL text parsing and serialisation.

RPSL objects are blocks of ``attribute: value`` lines separated by blank
lines; a line starting with whitespace or ``+`` continues the previous
attribute (RFC 2622 §2).  The parser produces attribute lists preserving
order and repetition, and the typed codecs below convert between blocks
and the dataclasses in :mod:`repro.irr.objects`.
"""

from __future__ import annotations

from datetime import date

from repro.errors import RPSLError
from repro.irr.objects import (
    AsSetObject,
    AutNumObject,
    MntnerObject,
    RouteObject,
)
from repro.net.asn import format_asn, parse_asn
from repro.net.prefix import Prefix

__all__ = [
    "parse_rpsl_blocks",
    "serialize_object",
    "parse_object",
    "serialize_database",
    "parse_database",
]

RPSLObject = RouteObject | AutNumObject | AsSetObject | MntnerObject


def parse_rpsl_blocks(text: str) -> list[list[tuple[str, str]]]:
    """Split RPSL text into blocks of (attribute, value) pairs."""
    blocks: list[list[tuple[str, str]]] = []
    current: list[tuple[str, str]] = []
    for raw_line in text.splitlines():
        if not raw_line.strip():
            if current:
                blocks.append(current)
                current = []
            continue
        if raw_line.startswith("%") or raw_line.startswith("#"):
            continue  # comment lines used by whois output
        if raw_line[0] in (" ", "\t", "+"):
            if not current:
                raise RPSLError(f"continuation line outside object: {raw_line!r}")
            attribute, value = current[-1]
            continuation = raw_line.lstrip(" \t+").strip()
            current[-1] = (attribute, f"{value} {continuation}".strip())
            continue
        if ":" not in raw_line:
            raise RPSLError(f"malformed RPSL line: {raw_line!r}")
        attribute, _, value = raw_line.partition(":")
        current.append((attribute.strip().lower(), value.strip()))
    if current:
        blocks.append(current)
    return blocks


def _first(block: list[tuple[str, str]], attribute: str, default: str | None = None) -> str:
    for name, value in block:
        if name == attribute:
            return value
    if default is None:
        raise RPSLError(f"missing mandatory attribute {attribute!r}")
    return default


def _all(block: list[tuple[str, str]], attribute: str) -> tuple[str, ...]:
    return tuple(value for name, value in block if name == attribute)


def _parse_date(value: str) -> date | None:
    if not value:
        return None
    try:
        return date.fromisoformat(value)
    except ValueError as exc:
        raise RPSLError(f"bad date attribute: {value!r}") from exc


def parse_object(block: list[tuple[str, str]]) -> RPSLObject:
    """Convert one parsed block into its typed object.

    All value errors (bad prefixes, bad ASNs, bad dates) surface as
    :class:`~repro.errors.RPSLError`.
    """
    if not block:
        raise RPSLError("empty RPSL block")
    try:
        return _parse_object_inner(block)
    except RPSLError:
        raise
    except ValueError as exc:  # PrefixError / ASNError are ValueErrors
        raise RPSLError(f"bad RPSL value in {block[0][0]!r} object: {exc}") from exc


def _parse_object_inner(block: list[tuple[str, str]]) -> RPSLObject:
    object_class = block[0][0]
    if object_class in ("route", "route6"):
        return RouteObject(
            prefix=Prefix.parse(block[0][1]),
            origin=parse_asn(_first(block, "origin")),
            source=_first(block, "source"),
            mnt_by=_first(block, "mnt-by", "MAINT-NONE"),
            descr=_first(block, "descr", ""),
            created=_parse_date(_first(block, "created", "")),
            last_modified=_parse_date(_first(block, "last-modified", "")),
        )
    if object_class == "aut-num":
        return AutNumObject(
            asn=parse_asn(block[0][1]),
            as_name=_first(block, "as-name", ""),
            source=_first(block, "source"),
            mnt_by=_first(block, "mnt-by", "MAINT-NONE"),
            admin_c=_first(block, "admin-c", ""),
            tech_c=_first(block, "tech-c", ""),
            import_lines=_all(block, "import"),
            export_lines=_all(block, "export"),
            last_modified=_parse_date(_first(block, "last-modified", "")),
        )
    if object_class == "as-set":
        members: list[str] = []
        for value in _all(block, "members"):
            members.extend(
                token.strip() for token in value.split(",") if token.strip()
            )
        return AsSetObject(
            name=block[0][1],
            members=tuple(members),
            source=_first(block, "source"),
            mnt_by=_first(block, "mnt-by", "MAINT-NONE"),
        )
    if object_class == "mntner":
        return MntnerObject(
            name=block[0][1],
            admin_c=_first(block, "admin-c", ""),
            auth=_first(block, "auth", "CRYPT-PW dummy"),
            source=_first(block, "source", "RADB"),
        )
    raise RPSLError(f"unsupported RPSL class {object_class!r}")


def serialize_object(obj: RPSLObject) -> str:
    """Render one typed object as RPSL text."""
    lines: list[str] = []

    def put(attribute: str, value: str) -> None:
        if value:
            lines.append(f"{attribute}:{' ' * max(1, 16 - len(attribute) - 1)}{value}")

    if isinstance(obj, RouteObject):
        put(obj.rpsl_class, str(obj.prefix))
        put("descr", obj.descr)
        put("origin", format_asn(obj.origin))
        put("mnt-by", obj.mnt_by)
        if obj.created:
            put("created", obj.created.isoformat())
        if obj.last_modified:
            put("last-modified", obj.last_modified.isoformat())
        put("source", obj.source)
    elif isinstance(obj, AutNumObject):
        put("aut-num", format_asn(obj.asn))
        put("as-name", obj.as_name or "UNNAMED")
        for line in obj.import_lines:
            put("import", line)
        for line in obj.export_lines:
            put("export", line)
        put("admin-c", obj.admin_c)
        put("tech-c", obj.tech_c)
        put("mnt-by", obj.mnt_by)
        if obj.last_modified:
            put("last-modified", obj.last_modified.isoformat())
        put("source", obj.source)
    elif isinstance(obj, AsSetObject):
        put("as-set", obj.name)
        if obj.members:
            put("members", ", ".join(obj.members))
        put("mnt-by", obj.mnt_by)
        put("source", obj.source)
    elif isinstance(obj, MntnerObject):
        put("mntner", obj.name)
        put("admin-c", obj.admin_c)
        put("auth", obj.auth)
        put("source", obj.source)
    else:
        raise RPSLError(f"cannot serialise {type(obj).__name__}")
    return "\n".join(lines) + "\n"


def serialize_database(objects: list[RPSLObject]) -> str:
    """Render a whole database dump (objects separated by blank lines)."""
    return "\n".join(serialize_object(obj) for obj in objects)


def parse_database(text: str) -> list[RPSLObject]:
    """Parse a full database dump into typed objects."""
    return [parse_object(block) for block in parse_rpsl_blocks(text)]
