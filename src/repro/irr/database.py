"""IRR databases and the multi-database collection.

Authoritative databases are run by the RIRs and only accept objects for
address space they administer; non-authoritative databases (like RADB)
accept anything, which is one source of the IRR's accuracy problems
(§2.2, [20]).  :class:`IRRCollection` aggregates several databases the way
RADB's mirror list does — queries search every member database.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.errors import RPSLError
from repro.irr.objects import AsSetObject, AutNumObject, RouteObject
from repro.net.prefix import Prefix
from repro.net.radix import RadixTree
from repro.registry.rir import RIR

__all__ = ["IRRDatabase", "IRRCollection"]


@dataclass
class IRRDatabase:
    """One IRR database (e.g. the RIPE IRR, or RADB)."""

    name: str
    #: Set when this database is the authoritative one for an RIR region.
    authoritative_for: RIR | None = None
    _routes: RadixTree[RouteObject] = field(default_factory=RadixTree)
    _aut_nums: dict[int, AutNumObject] = field(default_factory=dict)
    _as_sets: dict[str, AsSetObject] = field(default_factory=dict)
    #: Bumped on every route mutation; memo owners key their caches on it.
    _version: int = field(default=0, init=False, repr=False, compare=False)
    #: Accepted routes not yet in the trie.  World builds register tens
    #: of thousands of objects and may never walk the trie at all (bulk
    #: classification goes through the interval kernel), so trie entry
    #: is deferred until the first query and then done as one
    #: address-sorted ``insert_sorted`` burst — the stable sort keeps
    #: per-node value order identical to immediate per-route inserts.
    _pending_routes: list[tuple[Prefix, RouteObject]] = field(
        default_factory=list, init=False, repr=False, compare=False
    )

    def add_route(self, route: RouteObject) -> None:
        """Register a route object.

        Authoritative databases enforce that the prefix belongs to their
        RIR's pools; mirrors accept anything (that laxity is load-bearing
        for modelling stale/inaccurate registrations).
        """
        if route.source != self.name:
            raise RPSLError(
                f"route object source {route.source!r} does not match "
                f"database {self.name!r}"
            )
        if self.authoritative_for is not None:
            pools: tuple[Prefix, ...]
            if route.prefix.version == 4:
                pools = self.authoritative_for.v4_pools
            else:
                pools = (self.authoritative_for.v6_pool,)
            if not any(pool.contains(route.prefix) for pool in pools):
                raise RPSLError(
                    f"{route.prefix} is outside {self.authoritative_for.value} "
                    f"space; {self.name} is authoritative"
                )
        self._pending_routes.append((route.prefix, route))
        self._version += 1

    def _flush_routes(self) -> None:
        pending = self._pending_routes
        if pending:
            pending.sort(key=lambda item: item[0])
            from repro import obs

            with obs.gc_paused():
                self._routes.insert_sorted(pending)
            self._pending_routes = []

    def remove_route(self, route: RouteObject) -> bool:
        """Delete a route object; True if it was present."""
        self._flush_routes()
        removed = self._routes.remove(route.prefix, route)
        if removed:
            self._version += 1
        return removed

    def add_aut_num(self, aut_num: AutNumObject) -> None:
        """Register (or replace) the aut-num object for an ASN."""
        self._aut_nums[aut_num.asn] = aut_num

    def add_as_set(self, as_set: AsSetObject) -> None:
        """Register (or replace) an as-set by name."""
        self._as_sets[as_set.name.upper()] = as_set

    def routes_covering(self, prefix: Prefix) -> list[RouteObject]:
        """Route objects whose prefix contains ``prefix``."""
        self._flush_routes()
        return self._routes.covering(prefix)

    def routes_covering_many(
        self, prefixes: Iterable[Prefix]
    ) -> dict[Prefix, list[RouteObject]]:
        """Covering route objects for many prefixes (one bulk trie walk)."""
        self._flush_routes()
        return self._routes.covering_many(prefixes)

    @property
    def version(self) -> int:
        """Mutation counter for cache invalidation."""
        return self._version

    def routes_exact(self, prefix: Prefix) -> list[RouteObject]:
        """Route objects registered at exactly ``prefix``."""
        self._flush_routes()
        return self._routes.search_exact(prefix)

    def aut_num(self, asn: int) -> AutNumObject | None:
        """The aut-num object for ``asn`` if registered."""
        return self._aut_nums.get(asn)

    def as_set(self, name: str) -> AsSetObject | None:
        """The as-set object by (case-insensitive) name."""
        return self._as_sets.get(name.upper())

    def all_routes(self) -> list[RouteObject]:
        """Every route object, in address order."""
        self._flush_routes()
        return [route for _, route in self._routes.items()]

    def iter_route_objects(self) -> Iterable[RouteObject]:
        """Every route object in arbitrary order, without forcing the
        pending backlog into the trie (bulk kernels don't need it)."""
        for _, route in self._routes.items():
            yield route
        for _, route in self._pending_routes:
            yield route

    @property
    def route_count(self) -> int:
        """Number of route objects stored."""
        return len(self._routes) + len(self._pending_routes)


class IRRCollection:
    """A set of IRR databases queried together (the operator's view).

    Mirrors the way RADB aggregates: ``routes_covering`` returns matches
    from every member database, with the database order preserved so
    callers can prefer authoritative sources.
    """

    def __init__(self, databases: Iterable[IRRDatabase] = ()):
        self._databases: dict[str, IRRDatabase] = {}
        for database in databases:
            self.add_database(database)

    def add_database(self, database: IRRDatabase) -> None:
        """Add one member database (unique by name)."""
        if database.name in self._databases:
            raise RPSLError(f"duplicate IRR database {database.name!r}")
        self._databases[database.name] = database

    def database(self, name: str) -> IRRDatabase:
        """Look up a member database by name."""
        try:
            return self._databases[name]
        except KeyError as exc:
            raise RPSLError(f"unknown IRR database {name!r}") from exc

    @property
    def databases(self) -> list[IRRDatabase]:
        """All member databases, in registration order."""
        return list(self._databases.values())

    def routes_covering(self, prefix: Prefix) -> list[RouteObject]:
        """Covering route objects across all member databases."""
        found: list[RouteObject] = []
        for database in self._databases.values():
            found.extend(database.routes_covering(prefix))
        return found

    def routes_covering_many(
        self, prefixes: Iterable[Prefix]
    ) -> dict[Prefix, list[RouteObject]]:
        """Covering route objects for many deduplicated prefixes.

        Per-prefix result order matches :meth:`routes_covering`:
        database registration order first, then least- to most-specific
        within each database.  One walk set per distinct prefix — per-
        database bulk dicts merged afterwards were measured here and
        lost to the merge's own dict traffic.
        """
        databases = list(self._databases.values())
        combined: dict[Prefix, list[RouteObject]] = {}
        for prefix in prefixes:
            if prefix in combined:
                continue
            found: list[RouteObject] = []
            for database in databases:
                found.extend(database.routes_covering(prefix))
            combined[prefix] = found
        return combined

    @property
    def version(self) -> tuple[int, int]:
        """Combined mutation counter over member databases."""
        return (
            len(self._databases),
            sum(db.version for db in self._databases.values()),
        )

    def as_set(self, name: str) -> AsSetObject | None:
        """First as-set with this name across member databases."""
        for database in self._databases.values():
            as_set = database.as_set(name)
            if as_set is not None:
                return as_set
        return None

    def aut_num(self, asn: int) -> AutNumObject | None:
        """First aut-num for this ASN across member databases."""
        for database in self._databases.values():
            aut_num = database.aut_num(asn)
            if aut_num is not None:
                return aut_num
        return None

    @property
    def route_count(self) -> int:
        """Total route objects across all member databases."""
        return sum(db.route_count for db in self._databases.values())
