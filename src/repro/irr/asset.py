"""as-set expansion.

IXPs and cloud providers expand customer as-sets to decide which origin
ASes to accept announcements from (§2.2 cites Google's and SIX's use of
this).  Expansion must tolerate nested sets, missing members, and —
because anyone can create an as-set referencing anything — reference
cycles.
"""

from __future__ import annotations

from repro.errors import RPSLError
from repro.irr.database import IRRCollection, IRRDatabase

__all__ = ["expand_as_set"]

#: Nesting deeper than this is treated as a configuration error: real
#: resolvers (bgpq4 etc.) also bound recursion.
MAX_DEPTH = 32


def expand_as_set(
    registry: IRRCollection | IRRDatabase,
    name: str,
    strict: bool = False,
) -> frozenset[int]:
    """Resolve an as-set name to the full set of member ASNs.

    Cycles are tolerated (each set is visited once).  Unknown nested sets
    are skipped unless ``strict`` is true, in which case they raise
    :class:`~repro.errors.RPSLError`.
    """
    result: set[int] = set()
    visited: set[str] = set()
    stack: list[tuple[str, int]] = [(name.upper(), 0)]
    while stack:
        current, depth = stack.pop()
        if current in visited:
            continue
        visited.add(current)
        if depth > MAX_DEPTH:
            raise RPSLError(f"as-set nesting exceeds {MAX_DEPTH}: {name!r}")
        as_set = registry.as_set(current)
        if as_set is None:
            if strict:
                raise RPSLError(f"unknown as-set {current!r}")
            continue
        result.update(as_set.direct_asns)
        for nested in as_set.nested_sets:
            stack.append((nested.upper(), depth + 1))
    if strict and name.upper() not in visited:
        raise RPSLError(f"unknown as-set {name!r}")
    return frozenset(result)
