"""Deterministic sharding for the dominant world-build stages.

The scale-10 build cannot sit resident as one object graph, so the
three expensive stages stream through worker processes instead:
RIB collection shards by **vantage-point chunk**, ROV/IRR bulk
validation by **prefix range**, and IHR transit scoring by
**origin-class (route-group) chunk**.  Workers emit *column shards* —
flat integer arrays plus a tiny manifest — and the driver concatenates
them in shard order.

Determinism is structural, not incidental (DESIGN §13):

* shards are **contiguous slices** of an already-deterministically
  ordered sequence (``split_evenly`` never reorders);
* each worker's output depends only on its own slice (propagation,
  RFC 6811/IRR verdicts and per-group hegemony are all per-item pure);
* the driver concatenates in ascending shard index, which therefore
  reproduces exactly the serial iteration order.

So shard counts 1 and N are byte-identical by construction, and the
golden-digest suite pins it.

Safety mirrors the checkpoint contract: a shard manifest that fails
validation (schema skew, wrong shard arity, wrong row accounting) is
*not* patched up — the driver logs a warning, discards the sharded
attempt entirely and recomputes serially.  ``REPRO_SHARDS`` sets the
default shard count (1 = sharding off).
"""

from __future__ import annotations

import logging
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Sequence, TypeVar

from repro import config as _config
from repro import obs

__all__ = [
    "SHARDS_ENV",
    "SHARD_SCHEMA_VERSION",
    "check_shard_manifests",
    "pool_map",
    "resolve_shards",
    "shard_manifest",
    "split_evenly",
]

log = logging.getLogger(__name__)

SHARDS_ENV = "REPRO_SHARDS"

#: Bumped whenever the inter-process shard column layout changes; a
#: worker/driver version skew discards the shard and falls back serial.
SHARD_SCHEMA_VERSION = 1

T = TypeVar("T")


def resolve_shards(shards: int | None = None) -> int:
    """Effective shard count: explicit argument, else the active
    :class:`repro.config.RuntimeConfig` (which falls back to
    ``REPRO_SHARDS``), else 1."""
    if shards is None:
        shards = _config.current().shards
    return max(1, shards)


def split_evenly(items: Sequence[T], shards: int) -> list[Sequence[T]]:
    """Split into at most ``shards`` contiguous, order-preserving chunks.

    Chunk sizes differ by at most one and empty chunks are dropped, so
    the concatenation of the result *is* ``items`` — the property every
    shard-identity argument in this package rests on.
    """
    shards = min(max(1, shards), len(items)) if items else 1
    base, extra = divmod(len(items), shards)
    chunks: list[Sequence[T]] = []
    start = 0
    for index in range(shards):
        size = base + (1 if index < extra else 0)
        if size:
            chunks.append(items[start : start + size])
        start += size
    return chunks


def shard_manifest(stage: str, index: int, total: int, rows: int) -> dict:
    """The header a worker attaches to one emitted column shard."""
    return {
        "schema": SHARD_SCHEMA_VERSION,
        "stage": stage,
        "shard": index,
        "of": total,
        "rows": rows,
    }


def check_shard_manifests(
    manifests: Sequence[dict], stage: str, total: int
) -> list[str]:
    """Validate a full set of shard manifests; returns problems (empty = ok).

    Any problem means the driver must discard the sharded results and
    fall back to the serial path — never stitch together a partial or
    version-skewed set.
    """
    problems: list[str] = []
    if len(manifests) != total:
        problems.append(f"expected {total} shards, got {len(manifests)}")
    for position, manifest in enumerate(manifests):
        if not isinstance(manifest, dict):
            problems.append(f"shard {position}: manifest is not a mapping")
            continue
        schema = manifest.get("schema")
        if schema != SHARD_SCHEMA_VERSION:
            problems.append(
                f"shard {position}: schema skew ({schema!r} != "
                f"{SHARD_SCHEMA_VERSION})"
            )
        if manifest.get("stage") != stage:
            problems.append(
                f"shard {position}: stage {manifest.get('stage')!r} != {stage!r}"
            )
        if manifest.get("shard") != position or manifest.get("of") != total:
            problems.append(
                f"shard {position}: out of order "
                f"({manifest.get('shard')!r} of {manifest.get('of')!r})"
            )
    return problems


def pool_map(
    fn: Callable,
    tasks: Sequence,
    workers: int,
    initializer: Callable | None = None,
    initargs: tuple = (),
) -> list | None:
    """Map ``fn`` over ``tasks`` on a process pool, in task order.

    Returns None when no pool can be established (e.g. a sandboxed
    ``/dev/shm``); callers fall back to their serial path.  Worker
    exceptions propagate — a *computation* failure is a bug, only an
    *infrastructure* failure downgrades.
    """
    workers = max(1, min(workers, len(tasks)))
    try:
        with ProcessPoolExecutor(
            max_workers=workers, initializer=initializer, initargs=initargs
        ) as pool:
            results = list(pool.map(fn, tasks))
    except OSError:
        obs.add("shard.pool_unavailable")
        return None
    obs.add("shard.pool_maps")
    return results
