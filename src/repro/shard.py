"""Deterministic sharding for the dominant world-build stages.

The scale-10 build cannot sit resident as one object graph, so the
three expensive stages stream through worker processes instead:
RIB collection shards by **vantage-point chunk**, ROV/IRR bulk
validation by **prefix range**, and IHR transit scoring by
**origin-class (route-group) chunk**.  Workers emit *column shards* —
flat integer arrays plus a tiny manifest — and the driver concatenates
them in shard order.

Determinism is structural, not incidental (DESIGN §13):

* shards are **contiguous slices** of an already-deterministically
  ordered sequence (``split_evenly`` never reorders);
* each worker's output depends only on its own slice (propagation,
  RFC 6811/IRR verdicts and per-group hegemony are all per-item pure);
* the driver concatenates in ascending shard index, which therefore
  reproduces exactly the serial iteration order.

So shard counts 1 and N are byte-identical by construction, and the
golden-digest suite pins it.

Safety mirrors the checkpoint contract: a shard manifest that fails
validation (schema skew, wrong shard arity, wrong row accounting) is
*not* patched up — the driver logs a warning, discards the sharded
attempt entirely and recomputes serially.  ``REPRO_SHARDS`` sets the
default shard count (1 = sharding off).
"""

from __future__ import annotations

import logging
import os
import tempfile
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Iterator, Mapping, Sequence, TypeVar

import numpy as np

from repro import config as _config
from repro import obs

__all__ = [
    "BUILD_BUDGET_ENV",
    "SHARDS_ENV",
    "SHARD_SCHEMA_VERSION",
    "ColumnAccumulator",
    "SpillError",
    "check_shard_manifests",
    "pool_map",
    "pool_map_consume",
    "resolve_build_budget",
    "resolve_shards",
    "shard_manifest",
    "split_evenly",
]

log = logging.getLogger(__name__)

SHARDS_ENV = "REPRO_SHARDS"

BUILD_BUDGET_ENV = "REPRO_BUILD_BUDGET_MB"

#: Bumped whenever the inter-process shard column layout changes; a
#: worker/driver version skew discards the shard and falls back serial.
SHARD_SCHEMA_VERSION = 1

T = TypeVar("T")


def resolve_shards(shards: int | None = None) -> int:
    """Effective shard count: explicit argument, else the active
    :class:`repro.config.RuntimeConfig` (which falls back to
    ``REPRO_SHARDS``), else 1."""
    if shards is None:
        shards = _config.current().shards
    return max(1, shards)


def split_evenly(items: Sequence[T], shards: int) -> list[Sequence[T]]:
    """Split into at most ``shards`` contiguous, order-preserving chunks.

    Chunk sizes differ by at most one and empty chunks are dropped, so
    the concatenation of the result *is* ``items`` — the property every
    shard-identity argument in this package rests on.
    """
    shards = min(max(1, shards), len(items)) if items else 1
    base, extra = divmod(len(items), shards)
    chunks: list[Sequence[T]] = []
    start = 0
    for index in range(shards):
        size = base + (1 if index < extra else 0)
        if size:
            chunks.append(items[start : start + size])
        start += size
    return chunks


def resolve_build_budget(budget_mb: float | None = None) -> int | None:
    """Effective build byte budget: explicit MB argument, else the active
    :class:`repro.config.RuntimeConfig` (which falls back to
    ``REPRO_BUILD_BUDGET_MB``).  Returns whole bytes, or None when the
    build should stay entirely in memory."""
    if budget_mb is None:
        budget_mb = _config.current().build_budget_mb
    if budget_mb is None:
        return None
    return max(0, int(budget_mb * 1024 * 1024))


class SpillError(RuntimeError):
    """A spilled column block could not be written back or read back.

    Mirrors the shard-manifest contract: the driver never stitches a
    partial spill — it discards the sharded/budgeted attempt entirely
    and recomputes along the in-memory path.
    """


class _SpillRef:
    """Where one spilled array lives inside the scratch file."""

    __slots__ = ("dtype", "shape", "offset", "nbytes")

    def __init__(self, dtype, shape, offset: int, nbytes: int) -> None:
        self.dtype = dtype
        self.shape = shape
        self.offset = offset
        self.nbytes = nbytes


class ColumnAccumulator:
    """Ordered column blocks with an optional spill-to-disk byte budget.

    Shard drivers :meth:`append` one dict of ndarray columns per shard,
    in ascending shard order; the accumulator preserves that order
    exactly, so :meth:`concat` reproduces the serial concatenation the
    digest identity rests on (DESIGN §13/§18).  When the buffered bytes
    exceed ``budget_bytes``, every fully-appended block is flushed to a
    single per-stage scratch file as raw C-contiguous bytes and the
    in-memory references are dropped — block memory is only released
    after the write is verified against the file size.

    Read-back (:meth:`block`, :meth:`concat`) reads each spilled array
    straight into its destination buffer, so peak RSS during concat is
    the output columns plus one block.  A scratch file that fails
    verification (external truncation, short read) is discarded — never
    patched — the ``build.spill.corrupt`` counter is bumped and
    :class:`SpillError` raised so the caller can fall back in memory.
    """

    def __init__(
        self,
        stage: str,
        budget_bytes: int | None = None,
        scratch_dir: str | None = None,
    ) -> None:
        self.stage = stage
        self.budget_bytes = budget_bytes
        self.scratch_dir = scratch_dir
        self._blocks: list[dict[str, np.ndarray | _SpillRef]] = []
        self._buffered_bytes = 0
        self._file = None
        self._path: str | None = None
        self._tell = 0
        self._closed = False

    # -- lifecycle -----------------------------------------------------------

    def __enter__(self) -> "ColumnAccumulator":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        """Release buffered blocks and delete the scratch file."""
        self._closed = True
        self._blocks = []
        self._buffered_bytes = 0
        self._discard_scratch()

    def _discard_scratch(self) -> None:
        if self._file is not None:
            try:
                self._file.close()
            except OSError:  # pragma: no cover - close best effort
                pass
            self._file = None
        if self._path is not None:
            try:
                os.unlink(self._path)
            except OSError:
                pass
            self._path = None
        self._tell = 0

    # -- introspection -------------------------------------------------------

    @property
    def block_count(self) -> int:
        return len(self._blocks)

    @property
    def spilled(self) -> bool:
        """Whether any block currently lives on disk."""
        return any(
            isinstance(entry, _SpillRef)
            for block in self._blocks
            for entry in block.values()
        )

    # -- writing -------------------------------------------------------------

    def append(self, columns: Mapping[str, np.ndarray]) -> int:
        """Add one completed column block; returns its block index.

        Arrays are kept by reference until a spill is triggered, so the
        zero-budget/no-budget path adds no copies over the historical
        buffered-list driver.
        """
        if self._closed:
            raise SpillError(f"{self.stage}: accumulator is closed")
        block: dict[str, np.ndarray | _SpillRef] = {}
        for name, array in columns.items():
            array = np.asarray(array)
            if array.dtype.hasobject:
                raise ValueError(
                    f"{self.stage}: column {name!r} has object dtype; "
                    "only plain-data columns can be accumulated"
                )
            block[name] = array
            self._buffered_bytes += array.nbytes
        self._blocks.append(block)
        if (
            self.budget_bytes is not None
            and self._buffered_bytes > self.budget_bytes
        ):
            self._spill()
        return len(self._blocks) - 1

    def _ensure_scratch(self):
        if self._file is None:
            fd, path = tempfile.mkstemp(
                prefix=f"repro-{self.stage.replace('/', '_')}-",
                suffix=".spill",
                dir=self.scratch_dir,
            )
            self._file = os.fdopen(fd, "w+b")
            self._path = path
            self._tell = 0
            obs.add("build.spill.files")
        return self._file

    def _spill(self) -> None:
        """Flush every buffered array to the scratch file, verified.

        Memory is released only after the write is confirmed: the file
        is flushed and its size checked against the expected offset, so
        a short write surfaces as a :class:`SpillError` while the
        in-memory arrays are still intact (the caller's in-memory
        fallback stays sound).
        """
        try:
            handle = self._ensure_scratch()
            handle.seek(self._tell)
            pending: list[tuple[dict, str, np.ndarray, _SpillRef]] = []
            offset = self._tell
            spilled_blocks = 0
            spilled_bytes = 0
            for block in self._blocks:
                block_spilled = False
                for name, entry in block.items():
                    if isinstance(entry, _SpillRef):
                        continue
                    flat = np.ascontiguousarray(entry)
                    handle.write(memoryview(flat).cast("B"))
                    ref = _SpillRef(
                        entry.dtype, entry.shape, offset, flat.nbytes
                    )
                    offset += flat.nbytes
                    spilled_bytes += flat.nbytes
                    pending.append((block, name, entry, ref))
                    block_spilled = True
                if block_spilled:
                    spilled_blocks += 1
            handle.flush()
            actual = os.fstat(handle.fileno()).st_size
            if actual < offset:
                raise SpillError(
                    f"{self.stage}: scratch write verified short "
                    f"({actual} < {offset} bytes)"
                )
        except OSError as error:
            obs.add("build.spill.corrupt")
            self._discard_scratch()
            raise SpillError(f"{self.stage}: scratch write failed: {error}")
        except SpillError:
            obs.add("build.spill.corrupt")
            self._discard_scratch()
            raise
        # The write is verified — only now do the buffered arrays go.
        for block, name, entry, ref in pending:
            block[name] = ref
            self._buffered_bytes -= entry.nbytes
        self._tell = offset
        obs.add("build.spill.blocks", spilled_blocks)
        obs.add("build.spill.bytes", spilled_bytes)

    # -- reading -------------------------------------------------------------

    def _read_into(self, ref: _SpillRef, out: np.ndarray) -> None:
        """Fill ``out`` (C-contiguous, matching dtype/size) from scratch."""
        handle = self._file
        if handle is None:
            raise SpillError(f"{self.stage}: scratch file already discarded")
        try:
            handle.flush()
            size = os.fstat(handle.fileno()).st_size
            if ref.offset + ref.nbytes > size:
                raise SpillError(
                    f"{self.stage}: scratch file truncated "
                    f"({size} bytes, need {ref.offset + ref.nbytes})"
                )
            handle.seek(ref.offset)
            view = memoryview(out).cast("B")
            read = handle.readinto(view)
            if read != ref.nbytes:
                raise SpillError(
                    f"{self.stage}: short scratch read "
                    f"({read} != {ref.nbytes} bytes)"
                )
        except OSError as error:
            obs.add("build.spill.corrupt")
            self._discard_scratch()
            raise SpillError(f"{self.stage}: scratch read failed: {error}")
        except SpillError:
            obs.add("build.spill.corrupt")
            self._discard_scratch()
            raise

    def _fetch(self, entry: np.ndarray | _SpillRef) -> np.ndarray:
        if isinstance(entry, _SpillRef):
            out = np.empty(entry.shape, dtype=entry.dtype)
            self._read_into(entry, out)
            return out
        return entry

    def block(self, index: int) -> dict[str, np.ndarray]:
        """One appended block, reading spilled columns back from scratch."""
        return {
            name: self._fetch(entry)
            for name, entry in self._blocks[index].items()
        }

    def blocks(self) -> Iterator[dict[str, np.ndarray]]:
        """All blocks in append order, one resident at a time."""
        for index in range(len(self._blocks)):
            yield self.block(index)

    def column_names(self) -> list[str]:
        """Column names in first-appearance order across all blocks."""
        names: dict[str, None] = {}
        for block in self._blocks:
            for name in block:
                names.setdefault(name)
        return list(names)

    def concat(self) -> dict[str, np.ndarray]:
        """Per-column concatenation across blocks, in append order.

        Equivalent to ``np.concatenate`` over the blocks each column
        appears in; spilled segments are read directly into the output
        buffer, so no intermediate per-block copies accumulate.
        """
        out: dict[str, np.ndarray] = {}
        for name in self.column_names():
            entries = [
                block[name] for block in self._blocks if name in block
            ]
            dtype = entries[0].dtype
            if any(entry.dtype != dtype for entry in entries):
                raise ValueError(
                    f"{self.stage}: column {name!r} mixes dtypes across "
                    "blocks"
                )
            total = sum(entry.nbytes for entry in entries)
            itemsize = np.dtype(dtype).itemsize or 1
            merged = np.empty(total // itemsize, dtype=dtype)
            position = 0
            for entry in entries:
                length = entry.nbytes // itemsize
                segment = merged[position : position + length]
                if isinstance(entry, _SpillRef):
                    self._read_into(entry, segment)
                else:
                    segment[:] = np.asarray(entry).reshape(-1)
                position += length
            out[name] = merged
        return out


def shard_manifest(stage: str, index: int, total: int, rows: int) -> dict:
    """The header a worker attaches to one emitted column shard."""
    return {
        "schema": SHARD_SCHEMA_VERSION,
        "stage": stage,
        "shard": index,
        "of": total,
        "rows": rows,
    }


def check_shard_manifests(
    manifests: Sequence[dict], stage: str, total: int
) -> list[str]:
    """Validate a full set of shard manifests; returns problems (empty = ok).

    Any problem means the driver must discard the sharded results and
    fall back to the serial path — never stitch together a partial or
    version-skewed set.
    """
    problems: list[str] = []
    if len(manifests) != total:
        problems.append(f"expected {total} shards, got {len(manifests)}")
    for position, manifest in enumerate(manifests):
        if not isinstance(manifest, dict):
            problems.append(f"shard {position}: manifest is not a mapping")
            continue
        schema = manifest.get("schema")
        if schema != SHARD_SCHEMA_VERSION:
            problems.append(
                f"shard {position}: schema skew ({schema!r} != "
                f"{SHARD_SCHEMA_VERSION})"
            )
        if manifest.get("stage") != stage:
            problems.append(
                f"shard {position}: stage {manifest.get('stage')!r} != {stage!r}"
            )
        if manifest.get("shard") != position or manifest.get("of") != total:
            problems.append(
                f"shard {position}: out of order "
                f"({manifest.get('shard')!r} of {manifest.get('of')!r})"
            )
    return problems


def pool_map(
    fn: Callable,
    tasks: Sequence,
    workers: int,
    initializer: Callable | None = None,
    initargs: tuple = (),
) -> list | None:
    """Map ``fn`` over ``tasks`` on a process pool, in task order.

    Returns None when no pool can be established (e.g. a sandboxed
    ``/dev/shm``); callers fall back to their serial path.  Worker
    exceptions propagate — a *computation* failure is a bug, only an
    *infrastructure* failure downgrades.
    """
    workers = max(1, min(workers, len(tasks)))
    try:
        with ProcessPoolExecutor(
            max_workers=workers, initializer=initializer, initargs=initargs
        ) as pool:
            results = list(pool.map(fn, tasks))
    except OSError:
        obs.add("shard.pool_unavailable")
        return None
    obs.add("shard.pool_maps")
    return results


def pool_map_consume(
    fn: Callable,
    tasks: Sequence,
    workers: int,
    consume: Callable,
    initializer: Callable | None = None,
    initargs: tuple = (),
) -> bool:
    """Stream ``fn`` over ``tasks`` on a process pool, in task order,
    feeding each result to ``consume`` as it completes.

    Unlike :func:`pool_map` the driver never holds more than one
    in-flight result — ``consume`` typically appends columns to a
    :class:`ColumnAccumulator`, which bounds the driver's working set.
    Returns False when no pool can be established (the caller must
    discard whatever ``consume`` accumulated and fall back serial);
    ``consume`` and worker exceptions propagate.
    """
    workers = max(1, min(workers, len(tasks)))
    try:
        with ProcessPoolExecutor(
            max_workers=workers, initializer=initializer, initargs=initargs
        ) as pool:
            for result in pool.map(fn, tasks):
                consume(result)
    except OSError:
        obs.add("shard.pool_unavailable")
        return False
    obs.add("shard.pool_maps")
    return True
