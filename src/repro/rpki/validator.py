"""Relying-party validation: repository → validated ROA payloads.

The RP walks every published ROA's certificate chain to a trust anchor,
checking at each step that the certificate is current (unexpired, not
revoked) and that resources are contained in the issuer's resources, and
that the ROA itself is current and within its certificate's resources.
Surviving ROAs become :class:`~repro.rpki.roa.VRP` objects — the input to
route origin validation.

:class:`IncrementalRelyingParty` serves repeated validations of one
repository at many dates (annual timelines, VRP archives).  A ROA's
verdict depends on static facts (orphanhood, resource containment, chain
resolution) and on date windows (its own and its chain's not_before /
not_after); precomputing both reduces each additional validation run to
one pair of date comparisons per ROA.  Only objects whose validity
window is crossed between two query dates can change verdict — the full
walk is never repeated.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import date

from repro import obs
from repro.errors import RPKIError
from repro.rpki.ca import RPKIRepository, ResourceCertificate
from repro.rpki.roa import ROA, VRP

__all__ = ["ValidationReport", "RelyingParty", "IncrementalRelyingParty"]


@dataclass
class ValidationReport:
    """Outcome of one RP run: VRPs plus per-reason rejection counts."""

    vrps: list[VRP] = field(default_factory=list)
    rejected: dict[str, int] = field(default_factory=dict)

    def _reject(self, reason: str) -> None:
        self.rejected[reason] = self.rejected.get(reason, 0) + 1

    @property
    def rejected_total(self) -> int:
        """Number of ROAs that did not validate."""
        return sum(self.rejected.values())


class RelyingParty:
    """Validates an :class:`RPKIRepository` as of a given date."""

    def __init__(self, repository: RPKIRepository):
        self._repository = repository

    def validate(self, as_of: date) -> ValidationReport:
        """Produce the VRP set a router would receive on ``as_of``."""
        report = ValidationReport()
        chain_ok: dict[str, bool] = {}
        for roa in self._repository.roas:
            certificate = self._repository.certificates.get(roa.certificate_id)
            if certificate is None:
                report._reject("orphan_roa")
                continue
            if not roa.is_current(as_of):
                report._reject("roa_expired")
                continue
            if not certificate.covers(roa.prefix):
                report._reject("roa_outside_certificate")
                continue
            if not self._chain_valid(certificate, as_of, chain_ok):
                report._reject("bad_certificate_chain")
                continue
            report.vrps.append(
                VRP(
                    prefix=roa.prefix,
                    asn=roa.asn,
                    max_length=roa.max_length,
                    trust_anchor=certificate.trust_anchor,
                )
            )
        obs.add("rpki.rp_runs")
        obs.add("rpki.vrps_emitted", len(report.vrps))
        obs.add("rpki.roas_rejected", report.rejected_total)
        return report

    def _chain_valid(
        self,
        certificate: ResourceCertificate,
        as_of: date,
        cache: dict[str, bool],
    ) -> bool:
        cached = cache.get(certificate.certificate_id)
        if cached is not None:
            return cached
        try:
            chain = self._repository.chain_of(certificate)
        except RPKIError:
            cache[certificate.certificate_id] = False
            return False
        valid = all(link.is_current(as_of) for link in chain)
        if valid:
            # Child resources must be contained in the parent's resources
            # all the way up (over-claiming certificates are rejected).
            for child, parent in zip(chain, chain[1:]):
                if not all(
                    parent.covers(resource) for resource in child.resources
                ):
                    valid = False
                    break
        cache[certificate.certificate_id] = valid
        return valid


#: Sentinel windows for "never valid" plans.
_NEVER = (date.max, date.min)


@dataclass(frozen=True)
class _RoaPlan:
    """Date-independent facts about one ROA plus its validity windows.

    Evaluating a plan at a date replays exactly the checks (and check
    order, hence rejection-reason attribution) of
    :meth:`RelyingParty.validate`: orphan, ROA currency, certificate
    coverage, chain validity.
    """

    #: Rejection reason decided without looking at the date, or None.
    static_reason: str | None
    #: The ROA's own [not_before, not_after] window.
    roa_window: tuple[date, date]
    #: Reason checked after ROA currency but before the chain, or None.
    coverage_reason: str | None
    #: Intersection of the chain's windows; ``_NEVER`` when the chain is
    #: unresolvable or over-claiming (statically invalid).
    chain_window: tuple[date, date]
    #: The VRP emitted whenever every check passes.
    vrp: VRP


class IncrementalRelyingParty:
    """Relying party specialised for many validations at many dates.

    Results are identical to ``RelyingParty(repository).validate(as_of)``
    (asserted in the equivalence tests); the precomputed per-ROA plans
    are invalidated whenever the repository grows.
    """

    def __init__(self, repository: RPKIRepository):
        self._repository = repository
        self._plans: list[_RoaPlan] | None = None
        self._fingerprint: tuple[int, int, int] | None = None

    def _current_fingerprint(self) -> tuple[int, int, int]:
        # Revocation swaps a certificate in place (same id, same count),
        # so the revoked tally must be part of the staleness check.
        return (
            len(self._repository.roas),
            len(self._repository.certificates),
            sum(
                1
                for certificate in self._repository.certificates.values()
                if certificate.revoked
            ),
        )

    def refresh(self) -> None:
        """Drop the precomputed plans; the next validate rebuilds them.

        The fingerprint only tracks object *counts*, so an in-place
        mutation that removes one object and adds another (a delta
        event stream withdrawing one ROA and publishing a different one)
        can leave the counts unchanged while invalidating every plan.
        Callers that mutate the repository directly must call this after
        each mutation batch.
        """
        self._plans = None
        self._fingerprint = None

    def validate(self, as_of: date) -> ValidationReport:
        """Produce the VRP set a router would receive on ``as_of``."""
        fingerprint = self._current_fingerprint()
        if self._plans is None or fingerprint != self._fingerprint:
            self._plans = self._build_plans()
            self._fingerprint = fingerprint
        report = ValidationReport()
        vrps = report.vrps
        for plan in self._plans:
            if plan.static_reason is not None:
                report._reject(plan.static_reason)
                continue
            low, high = plan.roa_window
            if not low <= as_of <= high:
                report._reject("roa_expired")
                continue
            if plan.coverage_reason is not None:
                report._reject(plan.coverage_reason)
                continue
            low, high = plan.chain_window
            if not low <= as_of <= high:
                report._reject("bad_certificate_chain")
                continue
            vrps.append(plan.vrp)
        obs.add("rpki.rp_runs")
        obs.add("rpki.vrps_emitted", len(vrps))
        obs.add("rpki.roas_rejected", report.rejected_total)
        return report

    def _build_plans(self) -> list[_RoaPlan]:
        repository = self._repository
        chain_windows: dict[str, tuple[date, date]] = {}
        plans: list[_RoaPlan] = []
        for roa in repository.roas:
            certificate = repository.certificates.get(roa.certificate_id)
            if certificate is None:
                plans.append(
                    _RoaPlan("orphan_roa", _NEVER, None, _NEVER, None)
                )
                continue
            coverage_reason = (
                None
                if certificate.covers(roa.prefix)
                else "roa_outside_certificate"
            )
            chain_window = chain_windows.get(certificate.certificate_id)
            if chain_window is None:
                chain_window = self._chain_window(certificate)
                chain_windows[certificate.certificate_id] = chain_window
            plans.append(
                _RoaPlan(
                    None,
                    (roa.not_before, roa.not_after),
                    coverage_reason,
                    chain_window,
                    VRP(
                        prefix=roa.prefix,
                        asn=roa.asn,
                        max_length=roa.max_length,
                        trust_anchor=certificate.trust_anchor,
                    ),
                )
            )
        return plans

    def _chain_window(
        self, certificate: ResourceCertificate
    ) -> tuple[date, date]:
        """Dates at which the chain validates, as one closed interval.

        Every link must be simultaneously current, so the window is the
        intersection of the links' windows; resolution failures and
        over-claiming (both date-independent) collapse it to ``_NEVER``.
        """
        try:
            chain = self._repository.chain_of(certificate)
        except RPKIError:
            return _NEVER
        if any(link.revoked for link in chain):
            return _NEVER
        for child, parent in zip(chain, chain[1:]):
            if not all(
                parent.covers(resource) for resource in child.resources
            ):
                return _NEVER
        low = max(link.not_before for link in chain)
        high = min(link.not_after for link in chain)
        if low > high:
            return _NEVER
        return (low, high)
