"""Relying-party validation: repository → validated ROA payloads.

The RP walks every published ROA's certificate chain to a trust anchor,
checking at each step that the certificate is current (unexpired, not
revoked) and that resources are contained in the issuer's resources, and
that the ROA itself is current and within its certificate's resources.
Surviving ROAs become :class:`~repro.rpki.roa.VRP` objects — the input to
route origin validation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import date

from repro.errors import RPKIError
from repro.rpki.ca import RPKIRepository, ResourceCertificate
from repro.rpki.roa import ROA, VRP

__all__ = ["ValidationReport", "RelyingParty"]


@dataclass
class ValidationReport:
    """Outcome of one RP run: VRPs plus per-reason rejection counts."""

    vrps: list[VRP] = field(default_factory=list)
    rejected: dict[str, int] = field(default_factory=dict)

    def _reject(self, reason: str) -> None:
        self.rejected[reason] = self.rejected.get(reason, 0) + 1

    @property
    def rejected_total(self) -> int:
        """Number of ROAs that did not validate."""
        return sum(self.rejected.values())


class RelyingParty:
    """Validates an :class:`RPKIRepository` as of a given date."""

    def __init__(self, repository: RPKIRepository):
        self._repository = repository

    def validate(self, as_of: date) -> ValidationReport:
        """Produce the VRP set a router would receive on ``as_of``."""
        report = ValidationReport()
        chain_ok: dict[str, bool] = {}
        for roa in self._repository.roas:
            certificate = self._repository.certificates.get(roa.certificate_id)
            if certificate is None:
                report._reject("orphan_roa")
                continue
            if not roa.is_current(as_of):
                report._reject("roa_expired")
                continue
            if not certificate.covers(roa.prefix):
                report._reject("roa_outside_certificate")
                continue
            if not self._chain_valid(certificate, as_of, chain_ok):
                report._reject("bad_certificate_chain")
                continue
            report.vrps.append(
                VRP(
                    prefix=roa.prefix,
                    asn=roa.asn,
                    max_length=roa.max_length,
                    trust_anchor=certificate.trust_anchor,
                )
            )
        return report

    def _chain_valid(
        self,
        certificate: ResourceCertificate,
        as_of: date,
        cache: dict[str, bool],
    ) -> bool:
        cached = cache.get(certificate.certificate_id)
        if cached is not None:
            return cached
        try:
            chain = self._repository.chain_of(certificate)
        except RPKIError:
            cache[certificate.certificate_id] = False
            return False
        valid = all(link.is_current(as_of) for link in chain)
        if valid:
            # Child resources must be contained in the parent's resources
            # all the way up (over-claiming certificates are rejected).
            for child, parent in zip(chain, chain[1:]):
                if not all(
                    parent.covers(resource) for resource in child.resources
                ):
                    valid = False
                    break
        cache[certificate.certificate_id] = valid
        return valid
