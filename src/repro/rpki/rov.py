"""Route Origin Validation per RFC 6811 (and §6.1 of the paper).

Given the VRP set, classify a route (prefix, origin AS):

* **NOT_FOUND** — no VRP covers the prefix;
* **VALID** — some covering VRP matches both the origin ASN and the
  prefix length (≤ maxLength);
* **INVALID_LENGTH** — at least one covering VRP matches the ASN but the
  announced prefix is more specific than its maxLength allows;
* **INVALID_ASN** — covering VRPs exist but none matches the origin ASN
  (this includes AS0 ROAs, which can never match).

The classifier is backed by the radix trie, so a lookup costs
O(prefix length) regardless of table size.
"""

from __future__ import annotations

from enum import Enum
from typing import Iterable

from repro.net.prefix import Prefix
from repro.net.radix import RadixTree
from repro.rpki.roa import VRP

__all__ = ["RPKIStatus", "ROVValidator"]


class RPKIStatus(str, Enum):
    """RFC 6811 route validation outcome."""

    VALID = "valid"
    INVALID_ASN = "invalid_asn"
    INVALID_LENGTH = "invalid_length"
    NOT_FOUND = "not_found"

    @property
    def is_invalid(self) -> bool:
        """True for either invalid flavour."""
        return self in (RPKIStatus.INVALID_ASN, RPKIStatus.INVALID_LENGTH)


class ROVValidator:
    """Stateful validator over a fixed VRP set."""

    def __init__(self, vrps: Iterable[VRP]):
        self._tree: RadixTree[VRP] = RadixTree()
        count = 0
        for vrp in vrps:
            self._tree.insert(vrp.prefix, vrp)
            count += 1
        self._count = count

    def __len__(self) -> int:
        """Number of VRPs loaded."""
        return self._count

    def all_vrps(self) -> list[VRP]:
        """Every loaded VRP, in address order."""
        return [vrp for _, vrp in self._tree.items()]

    def covering_vrps(self, prefix: Prefix) -> list[VRP]:
        """All VRPs whose prefix contains ``prefix``."""
        return self._tree.covering(prefix)

    def validate(self, prefix: Prefix, origin: int) -> RPKIStatus:
        """Classify one route against the loaded VRPs."""
        covering = self._tree.covering(prefix)
        if not covering:
            return RPKIStatus.NOT_FOUND
        asn_match = False
        for vrp in covering:
            if vrp.asn == origin and vrp.asn != 0:
                if prefix.length <= vrp.max_length:
                    return RPKIStatus.VALID
                asn_match = True
        return RPKIStatus.INVALID_LENGTH if asn_match else RPKIStatus.INVALID_ASN

    def covered_space(self, prefixes: Iterable[Prefix]) -> list[Prefix]:
        """Subset of ``prefixes`` that have at least one covering VRP.

        This is the paper's "ROA covered ... address space" numerator for
        RPKI saturation (Equation 7/8).
        """
        return [p for p in prefixes if self._tree.has_covering(p)]
