"""Route Origin Validation per RFC 6811 (and §6.1 of the paper).

Given the VRP set, classify a route (prefix, origin AS):

* **NOT_FOUND** — no VRP covers the prefix;
* **VALID** — some covering VRP matches both the origin ASN and the
  prefix length (≤ maxLength);
* **INVALID_LENGTH** — at least one covering VRP matches the ASN but the
  announced prefix is more specific than its maxLength allows;
* **INVALID_ASN** — covering VRPs exist but none matches the origin ASN
  (this includes AS0 ROAs, which can never match).

The classifier is backed by the radix trie, so a lookup costs
O(prefix length) regardless of table size.
"""

from __future__ import annotations

import logging
from enum import Enum
from typing import Iterable

import numpy as np

from repro import config as _config
from repro import kernels, obs
from repro.config import RuntimeConfig
from repro.kernels.intervals import RouteIntervalIndex
from repro.net.prefix import Prefix
from repro.net.radix import RadixTree
from repro.rpki.roa import VRP
from repro.shard import (
    ColumnAccumulator,
    SpillError,
    check_shard_manifests,
    pool_map_consume,
    resolve_build_budget,
    resolve_shards,
    shard_manifest,
    split_evenly,
)

__all__ = ["RPKIStatus", "ROVValidator"]

log = logging.getLogger(__name__)

#: Below this many pending routes the per-pool VRP pickling cannot pay
#: for itself; bulk validation stays in-process regardless of shards.
MIN_SHARD_ROUTES = 2048


class RPKIStatus(str, Enum):
    """RFC 6811 route validation outcome."""

    VALID = "valid"
    INVALID_ASN = "invalid_asn"
    INVALID_LENGTH = "invalid_length"
    NOT_FOUND = "not_found"

    @property
    def is_invalid(self) -> bool:
        """True for either invalid flavour."""
        return self in (RPKIStatus.INVALID_ASN, RPKIStatus.INVALID_LENGTH)


def _classify(covering: list[VRP], prefix: Prefix, origin: int) -> RPKIStatus:
    """RFC 6811 classification given the covering VRPs."""
    if not covering:
        return RPKIStatus.NOT_FOUND
    asn_match = False
    for vrp in covering:
        if vrp.asn == origin and vrp.asn != 0:
            if prefix.length <= vrp.max_length:
                return RPKIStatus.VALID
            asn_match = True
    return RPKIStatus.INVALID_LENGTH if asn_match else RPKIStatus.INVALID_ASN


#: Interval-kernel verdict code → RFC 6811 status (see kernels.intervals).
_STATUS_BY_CODE = (
    RPKIStatus.NOT_FOUND,
    RPKIStatus.VALID,
    RPKIStatus.INVALID_LENGTH,
    RPKIStatus.INVALID_ASN,
)

#: The inverse mapping, for packing verdicts into column shards.
_CODE_BY_STATUS = {status: code for code, status in enumerate(_STATUS_BY_CODE)}


class ROVValidator:
    """Stateful validator over a fixed VRP set.

    The VRP set is frozen at construction, so per-route verdicts are
    memoised: within one snapshot the same (prefix, origin) is typically
    classified several times (announcement classing, the IHR pipeline,
    conformance analyses) and only the first lookup walks the trie.
    """

    def __init__(self, vrps: Iterable[VRP]):
        self._vrps: list[VRP] = list(vrps)
        self._count = len(self._vrps)
        # Both lookup structures are lazy: the radix trie backs the
        # per-route reference path and ad-hoc covering queries, the
        # interval index backs the bulk numpy kernels.  A validator used
        # only through one path never builds the other.
        self._tree: RadixTree[VRP] | None = None
        self._index: RouteIntervalIndex | None = None
        obs.add("rov.validators_built")
        obs.add("rov.vrps_loaded", self._count)
        self._memo: dict[tuple[Prefix, int], RPKIStatus] = {}
        self._covered_memo: dict[Prefix, bool] = {}

    def __len__(self) -> int:
        """Number of VRPs loaded."""
        return self._count

    def _trie(self) -> RadixTree[VRP]:
        tree = self._tree
        if tree is None:
            tree = RadixTree()
            # Pause cyclic GC for the node burst: timeline sweeps
            # construct a validator per year inside an already-large
            # process, where every few hundred node allocations would
            # otherwise trigger a full generation-0 scan of the world.
            with obs.gc_paused():
                for vrp in self._vrps:
                    tree.insert(vrp.prefix, vrp)
            self._tree = tree
        return tree

    def interval_index(self) -> RouteIntervalIndex:
        """The searchsorted form of the VRP set (built on first use)."""
        index = self._index
        if index is None:
            index = RouteIntervalIndex(
                (vrp.prefix, vrp.asn, vrp.max_length) for vrp in self._vrps
            )
            self._index = index
        return index

    def all_vrps(self) -> list[VRP]:
        """Every loaded VRP, in address order."""
        return [vrp for _, vrp in self._trie().items()]

    def covering_vrps(self, prefix: Prefix) -> list[VRP]:
        """All VRPs whose prefix contains ``prefix``."""
        return self._trie().covering(prefix)

    def validate(self, prefix: Prefix, origin: int) -> RPKIStatus:
        """Classify one route against the loaded VRPs."""
        key = (prefix, origin)
        status = self._memo.get(key)
        if status is None:
            status = _classify(self._trie().covering(prefix), prefix, origin)
            self._memo[key] = status
        return status

    def _classify_pending(
        self, pending: list[tuple[Prefix, int]]
    ) -> list[RPKIStatus]:
        """Bulk-classify not-yet-memoised routes, aligned with ``pending``."""
        if kernels.use_numpy():
            codes = self.interval_index().classify_routes(pending)
            return [_STATUS_BY_CODE[code] for code in codes.tolist()]
        covering = self._trie().covering_many(prefix for prefix, _ in pending)
        return [
            _classify(covering[prefix], prefix, origin)
            for prefix, origin in pending
        ]

    def _sharded_statuses(
        self, pending: list[tuple[Prefix, int]], shards: int, jobs: int
    ) -> list[RPKIStatus] | None:
        """Classify prefix-range shards on a process pool; None = fall back.

        ``pending`` must already be sorted, so each contiguous chunk is
        one prefix range.  Workers emit verdict-code column shards which
        concatenate in shard order; verdicts are per-route pure, so the
        result is identical to the in-process bulk walk.
        """
        chunks = split_evenly(pending, shards)
        total = len(chunks)
        tasks = [(index, total, list(chunk)) for index, chunk in enumerate(chunks)]
        obs.add("rov.validate_shards", total)
        manifests: list[dict] = []
        rows_seen = 0
        try:
            with ColumnAccumulator(
                "rov.validate", budget_bytes=resolve_build_budget()
            ) as accumulator:

                def consume(result: tuple[dict, np.ndarray]) -> None:
                    nonlocal rows_seen
                    manifest, codes = result
                    manifests.append(manifest)
                    rows_seen += len(codes)
                    accumulator.append({"codes": codes})

                ok = pool_map_consume(
                    _classify_route_shard,
                    tasks,
                    workers=max(jobs, 1),
                    consume=consume,
                    initializer=_init_rov_shard_worker,
                    initargs=(self._vrps,),
                )
                if not ok:
                    return None
                problems = check_shard_manifests(
                    manifests, "rov.validate", total
                )
                if not problems and rows_seen != len(pending):
                    problems.append("row accounting mismatch")
                if problems:
                    log.warning(
                        "discarding sharded ROV validation (%s); recomputing "
                        "unsharded",
                        "; ".join(problems),
                    )
                    obs.add("shard.discarded")
                    return None
                codes = accumulator.concat()["codes"]
        except SpillError as error:
            log.warning(
                "discarding sharded ROV validation (%s); recomputing "
                "unsharded",
                error,
            )
            obs.add("shard.discarded")
            return None
        return [_STATUS_BY_CODE[code] for code in codes.tolist()]

    def validate_many(
        self,
        routes: Iterable[tuple[Prefix, int]],
        shards: int | None = None,
        jobs: int | None = None,
        runtime: RuntimeConfig | None = None,
    ) -> dict[tuple[Prefix, int], RPKIStatus]:
        """Classify a batch of routes with one bulk trie walk.

        Equivalent to calling :meth:`validate` per route, but covering
        VRPs for all not-yet-memoised prefixes are gathered via
        :meth:`RadixTree.covering_many` first.

        ``shards`` (default: the runtime config / ``REPRO_SHARDS``, else
        1) fans the bulk classification across a process pool by prefix
        range; verdicts are per-route pure, so the sharded result is
        identical.  ``runtime`` installs a
        :class:`repro.config.RuntimeConfig` for the duration of the call.
        """
        if runtime is not None:
            with _config.use(runtime):
                return self.validate_many(routes, shards=shards, jobs=jobs)
        routes = set(routes)
        results: dict[tuple[Prefix, int], RPKIStatus] = {}
        pending: list[tuple[Prefix, int]] = []
        for key in routes:
            status = self._memo.get(key)
            if status is None:
                pending.append(key)
            else:
                results[key] = status
        if pending:
            statuses = None
            shards = resolve_shards(shards)
            if shards > 1 and len(pending) >= MIN_SHARD_ROUTES:
                # Sort so chunks are genuine prefix ranges (and shard
                # boundaries never depend on set-iteration order).
                pending.sort()
                statuses = self._sharded_statuses(
                    pending, shards, obs.resolve_jobs(jobs)
                )
            if statuses is None:
                statuses = self._classify_pending(pending)
            tallies: dict[RPKIStatus, int] = {}
            for key, status in zip(pending, statuses):
                self._memo[key] = status
                results[key] = status
                tallies[status] = tallies.get(status, 0) + 1
            for status, tally in tallies.items():
                obs.add(f"rov.verdict.{status.value}", tally)
        obs.add("rov.memo_hits", len(routes) - len(pending))
        obs.add("rov.memo_misses", len(pending))
        return results

    def seed_verdicts(
        self, verdicts: dict[tuple[Prefix, int], RPKIStatus]
    ) -> None:
        """Pre-populate the per-route memo with externally known verdicts.

        The caller asserts the verdicts are what this validator would
        compute itself — the sound use is carrying verdicts across a
        validator rebuild for routes whose covering VRP set provably did
        not change (see :mod:`repro.delta`).
        """
        self._memo.update(verdicts)

    def seed_from(
        self, other: "ROVValidator", changed: Iterable[Prefix]
    ) -> int:
        """Carry memoised state over from ``other`` for unaffected routes.

        ``changed`` is the set of prefixes whose VRP entries differ
        between the two validators' VRP sets.  A route's RFC 6811 verdict
        is a function of its covering VRPs, and its coverage bit of
        whether any covering VRP exists; both can only change when some
        added/removed VRP covers the route, i.e. when the route's prefix
        lies inside a changed prefix.  Everything outside that cover set
        is copied; returns the number of entries carried.
        """
        spans: dict[int, list[tuple[int, int]]] = {}
        for prefix in changed:
            spans.setdefault(prefix.version, []).append(
                (prefix.first, prefix.last)
            )

        def unaffected(prefix: Prefix) -> bool:
            for first, last in spans.get(prefix.version, ()):
                if prefix.first >= first and prefix.last <= last:
                    return False
            return True

        carried = 0
        for (prefix, origin), status in other._memo.items():
            if unaffected(prefix):
                self._memo[(prefix, origin)] = status
                carried += 1
        for prefix, covered in other._covered_memo.items():
            if unaffected(prefix):
                self._covered_memo[prefix] = covered
                carried += 1
        return carried

    def covered_space(self, prefixes: Iterable[Prefix]) -> list[Prefix]:
        """Subset of ``prefixes`` that have at least one covering VRP.

        This is the paper's "ROA covered ... address space" numerator for
        RPKI saturation (Equation 7/8).  Coverage per prefix is memoised:
        saturation sweeps re-query the same routed table against one
        validator (member and non-member splits, repeated series).
        """
        if kernels.use_numpy():
            if not isinstance(prefixes, (list, tuple)):
                prefixes = list(prefixes)
            mask = self.interval_index().covers_prefixes(prefixes)
            return [p for p, hit in zip(prefixes, mask.tolist()) if hit]
        memo = self._covered_memo
        has_covering = self._trie().has_covering
        result: list[Prefix] = []
        for prefix in prefixes:
            covered = memo.get(prefix)
            if covered is None:
                covered = has_covering(prefix)
                memo[prefix] = covered
            if covered:
                result.append(prefix)
        return result


# Worker-process state for prefix-range sharded validation, installed
# once per worker by the pool initializer (the VRP list pickles once).
_shard_validator: ROVValidator | None = None


def _init_rov_shard_worker(vrps: list[VRP]) -> None:
    global _shard_validator
    _shard_validator = ROVValidator(vrps)


def _classify_route_shard(task: tuple) -> tuple[dict, np.ndarray]:
    """Classify one prefix-range chunk; emits a verdict-code column."""
    index, total, chunk = task
    assert _shard_validator is not None
    statuses = _shard_validator._classify_pending(chunk)
    codes = np.fromiter(
        (_CODE_BY_STATUS[status] for status in statuses),
        dtype=np.int8,
        count=len(statuses),
    )
    return shard_manifest("rov.validate", index, total, len(chunk)), codes
