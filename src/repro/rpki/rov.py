"""Route Origin Validation per RFC 6811 (and §6.1 of the paper).

Given the VRP set, classify a route (prefix, origin AS):

* **NOT_FOUND** — no VRP covers the prefix;
* **VALID** — some covering VRP matches both the origin ASN and the
  prefix length (≤ maxLength);
* **INVALID_LENGTH** — at least one covering VRP matches the ASN but the
  announced prefix is more specific than its maxLength allows;
* **INVALID_ASN** — covering VRPs exist but none matches the origin ASN
  (this includes AS0 ROAs, which can never match).

The classifier is backed by the radix trie, so a lookup costs
O(prefix length) regardless of table size.
"""

from __future__ import annotations

from enum import Enum
from typing import Iterable

from repro import obs
from repro.net.prefix import Prefix
from repro.net.radix import RadixTree
from repro.rpki.roa import VRP

__all__ = ["RPKIStatus", "ROVValidator"]


class RPKIStatus(str, Enum):
    """RFC 6811 route validation outcome."""

    VALID = "valid"
    INVALID_ASN = "invalid_asn"
    INVALID_LENGTH = "invalid_length"
    NOT_FOUND = "not_found"

    @property
    def is_invalid(self) -> bool:
        """True for either invalid flavour."""
        return self in (RPKIStatus.INVALID_ASN, RPKIStatus.INVALID_LENGTH)


def _classify(covering: list[VRP], prefix: Prefix, origin: int) -> RPKIStatus:
    """RFC 6811 classification given the covering VRPs."""
    if not covering:
        return RPKIStatus.NOT_FOUND
    asn_match = False
    for vrp in covering:
        if vrp.asn == origin and vrp.asn != 0:
            if prefix.length <= vrp.max_length:
                return RPKIStatus.VALID
            asn_match = True
    return RPKIStatus.INVALID_LENGTH if asn_match else RPKIStatus.INVALID_ASN


class ROVValidator:
    """Stateful validator over a fixed VRP set.

    The VRP set is frozen at construction, so per-route verdicts are
    memoised: within one snapshot the same (prefix, origin) is typically
    classified several times (announcement classing, the IHR pipeline,
    conformance analyses) and only the first lookup walks the trie.
    """

    def __init__(self, vrps: Iterable[VRP]):
        self._tree: RadixTree[VRP] = RadixTree()
        count = 0
        # Pause cyclic GC for the node burst: timeline sweeps construct a
        # validator per year inside an already-large process, where every
        # few hundred node allocations would otherwise trigger a full
        # generation-0 scan of the world graph.
        with obs.gc_paused():
            for vrp in vrps:
                self._tree.insert(vrp.prefix, vrp)
                count += 1
        self._count = count
        obs.add("rov.validators_built")
        obs.add("rov.vrps_loaded", count)
        self._memo: dict[tuple[Prefix, int], RPKIStatus] = {}
        self._covered_memo: dict[Prefix, bool] = {}

    def __len__(self) -> int:
        """Number of VRPs loaded."""
        return self._count

    def all_vrps(self) -> list[VRP]:
        """Every loaded VRP, in address order."""
        return [vrp for _, vrp in self._tree.items()]

    def covering_vrps(self, prefix: Prefix) -> list[VRP]:
        """All VRPs whose prefix contains ``prefix``."""
        return self._tree.covering(prefix)

    def validate(self, prefix: Prefix, origin: int) -> RPKIStatus:
        """Classify one route against the loaded VRPs."""
        key = (prefix, origin)
        status = self._memo.get(key)
        if status is None:
            status = _classify(self._tree.covering(prefix), prefix, origin)
            self._memo[key] = status
        return status

    def validate_many(
        self, routes: Iterable[tuple[Prefix, int]]
    ) -> dict[tuple[Prefix, int], RPKIStatus]:
        """Classify a batch of routes with one bulk trie walk.

        Equivalent to calling :meth:`validate` per route, but covering
        VRPs for all not-yet-memoised prefixes are gathered via
        :meth:`RadixTree.covering_many` first.
        """
        routes = set(routes)
        results: dict[tuple[Prefix, int], RPKIStatus] = {}
        pending: list[tuple[Prefix, int]] = []
        for key in routes:
            status = self._memo.get(key)
            if status is None:
                pending.append(key)
            else:
                results[key] = status
        if pending:
            covering = self._tree.covering_many(prefix for prefix, _ in pending)
            tallies: dict[RPKIStatus, int] = {}
            for key in pending:
                prefix, origin = key
                status = _classify(covering[prefix], prefix, origin)
                self._memo[key] = status
                results[key] = status
                tallies[status] = tallies.get(status, 0) + 1
            for status, tally in tallies.items():
                obs.add(f"rov.verdict.{status.value}", tally)
        obs.add("rov.memo_hits", len(routes) - len(pending))
        obs.add("rov.memo_misses", len(pending))
        return results

    def covered_space(self, prefixes: Iterable[Prefix]) -> list[Prefix]:
        """Subset of ``prefixes`` that have at least one covering VRP.

        This is the paper's "ROA covered ... address space" numerator for
        RPKI saturation (Equation 7/8).  Coverage per prefix is memoised:
        saturation sweeps re-query the same routed table against one
        validator (member and non-member splits, repeated series).
        """
        memo = self._covered_memo
        has_covering = self._tree.has_covering
        result: list[Prefix] = []
        for prefix in prefixes:
            covered = memo.get(prefix)
            if covered is None:
                covered = has_covering(prefix)
                memo[prefix] = covered
            if covered:
                result.append(prefix)
        return result
