"""RPKI certification tree: trust anchors and resource certificates.

Each RIR is a trust anchor for the address space it administers (§2.3).
Resource holders get CA certificates listing their resources and sign ROAs
under them.  The model keeps the parts that matter for validation
semantics — resource containment down the chain, validity windows,
revocation — and drops actual cryptography (signatures are assumed
correct; what the paper measures is registration data quality, not
crypto failures).
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field
from datetime import date
from functools import cached_property

from repro.errors import RPKIError
from repro.net.prefix import Prefix
from repro.registry.rir import RIR
from repro.rpki.roa import ROA

__all__ = ["ResourceCertificate", "RPKIRepository"]


@dataclass(frozen=True)
class ResourceCertificate:
    """A CA certificate binding a subject to a set of address resources."""

    certificate_id: str
    subject: str
    resources: tuple[Prefix, ...]
    issuer_id: str | None  # None for a trust-anchor certificate
    trust_anchor: RIR
    not_before: date
    not_after: date
    revoked: bool = False

    def __post_init__(self) -> None:
        if self.not_after < self.not_before:
            raise RPKIError(
                f"certificate {self.certificate_id} validity window inverted"
            )

    def is_current(self, as_of: date) -> bool:
        """True if unexpired, already valid, and not revoked."""
        return (
            not self.revoked and self.not_before <= as_of <= self.not_after
        )

    @cached_property
    def _coverage(self) -> dict[int, tuple[list[int], list[int]]]:
        # Per version: resource ranges sorted by first address, paired
        # with the running maximum of last addresses.  A CIDR block is
        # contained in another iff its address range is, so "some
        # resource contains prefix" reduces to "the widest-reaching
        # resource starting at or below prefix.first reaches prefix.last".
        by_version: dict[int, list[tuple[int, int]]] = {}
        for resource in self.resources:
            by_version.setdefault(resource.version, []).append(
                (resource.first, resource.last)
            )
        coverage: dict[int, tuple[list[int], list[int]]] = {}
        for version, spans in by_version.items():
            spans.sort()
            firsts: list[int] = []
            reach: list[int] = []
            furthest = -1
            for first, last in spans:
                if last > furthest:
                    furthest = last
                firsts.append(first)
                reach.append(furthest)
            coverage[version] = (firsts, reach)
        return coverage

    def covers(self, prefix: Prefix) -> bool:
        """True if ``prefix`` is within this certificate's resources."""
        entry = self._coverage.get(prefix.version)
        if entry is None:
            return False
        firsts, reach = entry
        index = bisect_right(firsts, prefix.first) - 1
        return index >= 0 and reach[index] >= prefix.last


@dataclass
class RPKIRepository:
    """The global RPKI as published: certificates and ROAs by id.

    The repository is *untrusted input* to the relying party — it may
    contain expired certificates, ROAs outside their certificate's
    resources, or orphaned objects.  All of that is filtered during
    validation, never at insert time (matching how the real RPKI works:
    anyone can publish garbage; RPs discard it).
    """

    certificates: dict[str, ResourceCertificate] = field(default_factory=dict)
    roas: list[ROA] = field(default_factory=list)
    _next_cert: int = 0

    def add_trust_anchor(
        self,
        rir: RIR,
        not_before: date,
        not_after: date,
    ) -> ResourceCertificate:
        """Create the self-signed trust-anchor certificate for ``rir``."""
        resources = rir.v4_pools + (rir.v6_pool,)
        certificate = ResourceCertificate(
            certificate_id=f"TA-{rir.value}",
            subject=rir.value,
            resources=resources,
            issuer_id=None,
            trust_anchor=rir,
            not_before=not_before,
            not_after=not_after,
        )
        self._store(certificate)
        return certificate

    def issue_certificate(
        self,
        issuer: ResourceCertificate,
        subject: str,
        resources: tuple[Prefix, ...],
        not_before: date,
        not_after: date,
    ) -> ResourceCertificate:
        """Issue a CA certificate under ``issuer``.

        Resource containment is *not* enforced here — an RIR hosting
        system would enforce it, but modelling over-claiming certificates
        lets tests exercise the relying party's rejection path.
        """
        certificate = ResourceCertificate(
            certificate_id=f"CERT-{self._next_cert:06d}",
            subject=subject,
            resources=resources,
            issuer_id=issuer.certificate_id,
            trust_anchor=issuer.trust_anchor,
            not_before=not_before,
            not_after=not_after,
        )
        self._next_cert += 1
        self._store(certificate)
        return certificate

    def _store(self, certificate: ResourceCertificate) -> None:
        if certificate.certificate_id in self.certificates:
            raise RPKIError(f"duplicate certificate {certificate.certificate_id}")
        self.certificates[certificate.certificate_id] = certificate

    def revoke(self, certificate_id: str) -> None:
        """Mark a certificate revoked (its ROAs stop validating)."""
        certificate = self.certificates.get(certificate_id)
        if certificate is None:
            raise RPKIError(f"unknown certificate {certificate_id}")
        self.certificates[certificate_id] = ResourceCertificate(
            certificate_id=certificate.certificate_id,
            subject=certificate.subject,
            resources=certificate.resources,
            issuer_id=certificate.issuer_id,
            trust_anchor=certificate.trust_anchor,
            not_before=certificate.not_before,
            not_after=certificate.not_after,
            revoked=True,
        )

    def add_roa(self, roa: ROA) -> None:
        """Publish a ROA (validated later by the relying party)."""
        self.roas.append(roa)

    def chain_of(
        self, certificate: ResourceCertificate
    ) -> list[ResourceCertificate]:
        """The certificate chain up to (and including) the trust anchor.

        Raises :class:`RPKIError` on a broken or cyclic chain.
        """
        chain = [certificate]
        seen = {certificate.certificate_id}
        current = certificate
        while current.issuer_id is not None:
            parent = self.certificates.get(current.issuer_id)
            if parent is None:
                raise RPKIError(
                    f"certificate {current.certificate_id} has unknown issuer"
                )
            if parent.certificate_id in seen:
                raise RPKIError("certificate chain contains a cycle")
            chain.append(parent)
            seen.add(parent.certificate_id)
            current = parent
        return chain
