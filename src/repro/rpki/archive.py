"""VRP archive: dated snapshots in RIPE NCC's CSV export format.

RIPE publishes daily validated-ROA dumps since 2011 (§5.4); the paper uses
monthly snapshots from 2014–2022.  We reproduce the CSV schema
(``URI,ASN,IP Prefix,Max Length,Not Before,Not After``) so serialisation
round-trips through a genuine parser, and provide a small dated-snapshot
container used by the timeline.
"""

from __future__ import annotations

from datetime import date

from repro.errors import DatasetError
from repro.net.asn import parse_asn
from repro.net.prefix import Prefix
from repro.registry.rir import RIR, rir_for_prefix
from repro.rpki.roa import VRP

__all__ = ["VRPArchive", "serialize_vrps", "parse_vrps"]

_HEADER = "URI,ASN,IP Prefix,Max Length,Not Before,Not After"


class VRPArchive:
    """Dated VRP snapshots, newest-wins lookup by date."""

    def __init__(self) -> None:
        self._snapshots: dict[date, tuple[VRP, ...]] = {}

    def add_snapshot(self, snapshot_date: date, vrps: list[VRP]) -> None:
        """Store one dated snapshot (duplicates are an error)."""
        if snapshot_date in self._snapshots:
            raise DatasetError(f"duplicate VRP snapshot for {snapshot_date}")
        self._snapshots[snapshot_date] = tuple(vrps)

    @property
    def dates(self) -> list[date]:
        """All snapshot dates, ascending."""
        return sorted(self._snapshots)

    def snapshot(self, snapshot_date: date) -> tuple[VRP, ...]:
        """The snapshot taken exactly on ``snapshot_date``."""
        try:
            return self._snapshots[snapshot_date]
        except KeyError as exc:
            raise DatasetError(f"no VRP snapshot for {snapshot_date}") from exc

    def latest_at(self, as_of: date) -> tuple[VRP, ...]:
        """The most recent snapshot on or before ``as_of``."""
        eligible = [d for d in self._snapshots if d <= as_of]
        if not eligible:
            raise DatasetError(f"no VRP snapshot on or before {as_of}")
        return self._snapshots[max(eligible)]


def serialize_vrps(vrps: list[VRP], snapshot_date: date) -> str:
    """Render VRPs in the RIPE CSV export schema."""
    lines = [_HEADER]
    for vrp in sorted(vrps, key=lambda v: (v.prefix, v.asn, v.max_length)):
        uri = f"rsync://rpki.{vrp.trust_anchor.value.lower()}.example/roa"
        lines.append(
            f"{uri},AS{vrp.asn},{vrp.prefix},{vrp.max_length},"
            f"{snapshot_date.isoformat()},{snapshot_date.isoformat()}"
        )
    return "\n".join(lines) + "\n"


def parse_vrps(text: str) -> list[VRP]:
    """Parse the CSV schema produced by :func:`serialize_vrps`."""
    lines = text.splitlines()
    if not lines or lines[0].strip() != _HEADER:
        raise DatasetError("missing VRP CSV header")
    vrps: list[VRP] = []
    for line_number, line in enumerate(lines[1:], start=2):
        line = line.strip()
        if not line:
            continue
        fields = line.split(",")
        if len(fields) != 6:
            raise DatasetError(f"bad VRP record at line {line_number}")
        try:
            asn = parse_asn(fields[1])
            prefix = Prefix.parse(fields[2])
            max_length = int(fields[3])
        except ValueError as exc:
            raise DatasetError(
                f"bad VRP record at line {line_number}: {line!r}"
            ) from exc
        trust_anchor = _anchor_from_uri(fields[0], prefix)
        vrps.append(
            VRP(
                prefix=prefix,
                asn=asn,
                max_length=max_length,
                trust_anchor=trust_anchor,
            )
        )
    return vrps


def _anchor_from_uri(uri: str, prefix: Prefix) -> RIR:
    for rir in RIR:
        if f"rpki.{rir.value.lower()}." in uri:
            return rir
    # Fall back to deriving the anchor from the address space itself.
    return rir_for_prefix(prefix)
