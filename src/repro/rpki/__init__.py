"""RPKI substrate: ROAs, certification tree, relying party, ROV, archives."""

from repro.rpki.archive import VRPArchive, parse_vrps, serialize_vrps
from repro.rpki.ca import ResourceCertificate, RPKIRepository
from repro.rpki.roa import ROA, VRP
from repro.rpki.rov import ROVValidator, RPKIStatus
from repro.rpki.validator import RelyingParty, ValidationReport

__all__ = [
    "ROA",
    "ROVValidator",
    "RPKIRepository",
    "RPKIStatus",
    "RelyingParty",
    "ResourceCertificate",
    "VRP",
    "VRPArchive",
    "ValidationReport",
    "parse_vrps",
    "serialize_vrps",
]
