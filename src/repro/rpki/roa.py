"""Route Origin Authorizations and Validated ROA Payloads.

A ROA is the signed statement "AS *x* may originate prefix *p* up to
max-length *m*"; the relying party turns structurally valid ROAs under a
valid certificate chain into VRPs (RFC 6811's term for the validated
triples ROV actually consumes).
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import date

from repro.errors import RPKIError
from repro.net.asn import validate_asn
from repro.net.prefix import Prefix
from repro.registry.rir import RIR

__all__ = ["ROA", "VRP"]


@dataclass(frozen=True)
class ROA:
    """A Route Origin Authorization object.

    ``asn`` may be 0 (AS0, RFC 7607) to declare that a prefix must not be
    announced at all — the paper's §8.1 case study (the Indonesian ISP)
    hinges on an AS0 ROA.
    """

    prefix: Prefix
    asn: int
    max_length: int
    certificate_id: str
    not_before: date
    not_after: date

    def __post_init__(self) -> None:
        validate_asn(self.asn)
        if not self.prefix.length <= self.max_length <= self.prefix.bits:
            raise RPKIError(
                f"maxLength {self.max_length} outside "
                f"[{self.prefix.length}, {self.prefix.bits}] for {self.prefix}"
            )
        if self.not_after < self.not_before:
            raise RPKIError(
                f"ROA validity window inverted: {self.not_before}..{self.not_after}"
            )

    def is_current(self, as_of: date) -> bool:
        """True if ``as_of`` falls inside the validity window."""
        return self.not_before <= as_of <= self.not_after


@dataclass(frozen=True)
class VRP:
    """A Validated ROA Payload: the (prefix, asn, maxLength) triple."""

    prefix: Prefix
    asn: int
    max_length: int
    trust_anchor: RIR

    def __post_init__(self) -> None:
        validate_asn(self.asn)
        if not self.prefix.length <= self.max_length <= self.prefix.bits:
            raise RPKIError(
                f"VRP maxLength {self.max_length} invalid for {self.prefix}"
            )

    def covers(self, prefix: Prefix) -> bool:
        """True if this VRP is a *covering* VRP for ``prefix`` (RFC 6811)."""
        return self.prefix.contains(prefix)

    def matches(self, prefix: Prefix, origin: int) -> bool:
        """True if a route (prefix, origin) is Valid under this VRP."""
        return (
            self.covers(prefix)
            and self.asn == origin
            and self.asn != 0
            and prefix.length <= self.max_length
        )
